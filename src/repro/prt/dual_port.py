"""Multi-port π-test schemes (paper §4, Figure 2).

**Dual-port** (Figure 2): the two reads of a sub-iteration issue
*simultaneously* on the two ports; the write follows in the next cycle.
A k=2 π-iteration then takes ``2n`` cycles instead of ``3n`` -- the paper's
claim C4 for 2P RAM.  (The hardware cost is the "conversion of the existing
address registers into counters and a specific XOR-logic" priced by
:mod:`repro.prt.bist`.)

**Quad-port** ("QuadPort DSE family"): a *multi-LFSR* scheme -- two
independent virtual automata sweep the two halves of the array
concurrently, each pair of ports serving one automaton.  Per cycle the RAM
performs either 4 reads or 2 writes, so a full pass takes ``2 * (n/2) = n``
cycles: another 2x over dual-port.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gf2m.field import GF2m
from repro.memory.multiport import MultiPortRAM, PortOp
from repro.prt.pi_test import GF2, PiIterationResult
from repro.lfsr.word_lfsr import WordLFSR
from repro.prt.trajectory import Trajectory, ascending

__all__ = ["DualPortPiIteration", "QuadPortPiIteration", "QuadPortResult"]


class DualPortPiIteration:
    """The Figure 2 dual-port π-iteration (k = 2 only: the paper
    recommends this scheme "when polynomial g(x) has 2 terms" of feedback).

    Cycle pattern per sub-iteration ``j``::

        cycle 2j:     port0 reads traj[j],   port1 reads traj[j+1]
        cycle 2j+1:   port0 writes traj[j+2]

    >>> from repro.memory import DualPortRAM
    >>> from repro.gf2 import poly_from_string
    >>> from repro.gf2m import GF2m
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> it = DualPortPiIteration(field=F, generator=(1, 2, 2), seed=(0, 1))
    >>> ram = DualPortRAM(255, m=4)
    >>> result = it.run(ram)
    >>> result.passed
    True
    >>> ram.stats.cycles     # 2n sweep + 1 init + 1 signature cycle
    512
    """

    def __init__(self, field: GF2m | None = None,
                 generator: tuple[int, ...] = (1, 1, 1),
                 seed: tuple[int, ...] = (0, 1),
                 trajectory: Trajectory | None = None):
        self._field = field if field is not None else GF2
        generator = tuple(generator)
        seed = tuple(seed)
        if len(generator) != 3:
            raise ValueError(
                "the Figure 2 dual-port scheme needs a degree-2 generator "
                f"(k = 2); got degree {len(generator) - 1}"
            )
        self._reference = WordLFSR(self._field, generator, seed)
        if all(s == 0 for s in seed):
            raise ValueError("the all-zero seed exercises nothing")
        self._generator = generator
        self._seed = seed
        self._trajectory = trajectory

    @property
    def field(self) -> GF2m:
        """The coefficient field."""
        return self._field

    @property
    def generator(self) -> tuple[int, ...]:
        """Generator polynomial coefficients."""
        return self._generator

    @property
    def seed(self) -> tuple[int, ...]:
        """The initial window."""
        return self._seed

    @property
    def recurrence_multipliers(self) -> tuple[int, ...]:
        """Per-window-slot multipliers ``a_0^{-1} a_{k-j}`` of the
        recurrence (a zero entry means the port's read contributes
        nothing -- the read still issues, the cycle pattern is fixed).
        The :mod:`repro.sim` compiler bakes these into ``"ra"`` records."""
        return self._reference.recurrence_multipliers

    def expected_stream(self, n: int) -> list[int]:
        """The fault-free written stream: the value of the j-th sweep
        write (``s_{k+j}``), for result/debug cross-checks."""
        reference = self._reference.copy()
        reference.reset()
        reference.run(2)
        return list(reference.sequence(n))

    def __repr__(self) -> str:
        return (
            f"DualPortPiIteration(GF(2^{self._field.m}), "
            f"g={self._generator}, seed={self._seed})"
        )

    def trajectory_for(self, n: int) -> Trajectory:
        """The trajectory used on an n-cell memory (default ascending)."""
        if self._trajectory is not None:
            if self._trajectory.n != n:
                raise ValueError(
                    f"trajectory covers {self._trajectory.n} addresses, "
                    f"memory has {n}"
                )
            return self._trajectory
        return ascending(n)

    def cycle_count(self, n: int) -> int:
        """Cycles per iteration: ``2n + 2`` (init + 2-per-sub-iteration +
        signature) -- the paper's 2n (claim C4 for 2P RAM)."""
        return 2 * n + 2

    def expected_final(self, n: int) -> tuple[int, ...]:
        """``Fin*`` after the n-step pass."""
        reference = self._reference.copy()
        reference.reset()
        reference.run(n)
        return reference.state

    def run(self, ram: MultiPortRAM) -> PiIterationResult:
        """Execute on a RAM with at least two ports."""
        if getattr(ram, "ports", 1) < 2:
            raise ValueError("the dual-port scheme needs >= 2 ports")
        if ram.m != self._field.m:
            raise ValueError(
                f"RAM cell width m={ram.m} does not match field "
                f"GF(2^{self._field.m})"
            )
        n = ram.n
        if n < 3:
            raise ValueError(f"memory must have more than 2 cells, got {n}")
        traj = self.trajectory_for(n)
        field = self._field
        mult = self._reference.recurrence_multipliers
        operations = 0
        # Init: both seed words in one cycle (two ports, two cells).
        ram.cycle([
            PortOp(0, "w", traj[0], self._seed[0]),
            PortOp(1, "w", traj[1], self._seed[1]),
        ])
        operations += 2
        # Sweep: each sub-iteration is a double-read cycle then a write cycle.
        for j in range(n):
            reads = ram.cycle([
                PortOp(0, "r", traj[j]),
                PortOp(1, "r", traj[j + 1]),
            ])
            operations += 2
            acc = 0
            for i, r in enumerate((reads[0], reads[1])):
                if mult[i] and r:
                    acc = field.add(acc, field.mul(mult[i], r))
            ram.cycle([PortOp(0, "w", traj[j + 2], acc)])
            operations += 1
        # Signature: both final-window reads in one cycle.
        final = ram.cycle([
            PortOp(0, "r", traj[n]),
            PortOp(1, "r", traj[n + 1]),
        ])
        operations += 2
        return PiIterationResult(
            init_state=self._seed,
            final_state=(final[0], final[1]),
            expected_final=self.expected_final(n),
            operations=operations,
        )


@dataclass
class QuadPortResult:
    """Outcome of the quad-port multi-LFSR iteration: one
    :class:`PiIterationResult` per concurrent automaton."""

    halves: tuple[PiIterationResult, PiIterationResult]

    @property
    def passed(self) -> bool:
        """True when both automata matched their expected final states."""
        return all(r.passed for r in self.halves)

    def __repr__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"QuadPortResult({status})"


class QuadPortPiIteration:
    """Multi-LFSR scheme on a 4-port RAM: two automata sweep the two array
    halves concurrently.

    Cycle pattern per sub-iteration ``j`` (j over n/2)::

        cycle 2j:   ports 0,1 read automaton A's window,
                    ports 2,3 read automaton B's window
        cycle 2j+1: port 0 writes A's new word, port 2 writes B's

    Total: ``n + 2`` cycles for the full array -- half the dual-port time.

    >>> from repro.memory import QuadPortRAM
    >>> it = QuadPortPiIteration(seed=(0, 1))
    >>> ram = QuadPortRAM(12)
    >>> it.run(ram).passed
    True
    >>> ram.stats.cycles
    14
    """

    def __init__(self, field: GF2m | None = None,
                 generator: tuple[int, ...] = (1, 1, 1),
                 seed: tuple[int, ...] = (0, 1)):
        self._field = field if field is not None else GF2
        generator = tuple(generator)
        seed = tuple(seed)
        if len(generator) != 3:
            raise ValueError(
                "the quad-port scheme is defined for k = 2 generators"
            )
        self._reference = WordLFSR(self._field, generator, seed)
        if all(s == 0 for s in seed):
            raise ValueError("the all-zero seed exercises nothing")
        self._generator = generator
        self._seed = seed

    @property
    def field(self) -> GF2m:
        """The coefficient field."""
        return self._field

    @property
    def generator(self) -> tuple[int, ...]:
        """Generator polynomial coefficients."""
        return self._generator

    @property
    def seed(self) -> tuple[int, ...]:
        """The initial window (shared by both automata)."""
        return self._seed

    @property
    def recurrence_multipliers(self) -> tuple[int, ...]:
        """Per-window-slot recurrence multipliers (see
        :attr:`DualPortPiIteration.recurrence_multipliers`)."""
        return self._reference.recurrence_multipliers

    def expected_stream(self, n: int) -> list[int]:
        """The fault-free written stream of *one* automaton over its
        n/2-cell half (both automata run the same recurrence)."""
        reference = self._reference.copy()
        reference.reset()
        reference.run(2)
        return list(reference.sequence(n // 2))

    def expected_final(self, n: int) -> tuple[int, ...]:
        """``Fin*`` of each automaton after its n/2-step half-array pass."""
        reference = self._reference.copy()
        reference.reset()
        reference.run(n // 2)
        return reference.state

    def __repr__(self) -> str:
        return (
            f"QuadPortPiIteration(GF(2^{self._field.m}), "
            f"g={self._generator}, seed={self._seed})"
        )

    def cycle_count(self, n: int) -> int:
        """Cycles per iteration: ``n + 2`` for an even n."""
        return n + 2

    def run(self, ram: MultiPortRAM) -> QuadPortResult:
        """Execute on a 4-port RAM with an even number of cells."""
        if getattr(ram, "ports", 1) < 4:
            raise ValueError("the quad-port scheme needs >= 4 ports")
        if ram.m != self._field.m:
            raise ValueError(
                f"RAM cell width m={ram.m} does not match field "
                f"GF(2^{self._field.m})"
            )
        n = ram.n
        if n % 2 != 0 or n < 6:
            raise ValueError(
                f"the two-automata scheme needs an even n >= 6, got {n}"
            )
        half = n // 2
        # Automaton A sweeps cells [0, half), B sweeps [half, n).
        base = {0: 0, 1: half}
        field = self._field
        mult = self._reference.recurrence_multipliers
        seed = self._seed

        def cell(automaton: int, j: int) -> int:
            return base[automaton] + (j % half)

        ram.cycle([
            PortOp(0, "w", cell(0, 0), seed[0]),
            PortOp(1, "w", cell(0, 1), seed[1]),
            PortOp(2, "w", cell(1, 0), seed[0]),
            PortOp(3, "w", cell(1, 1), seed[1]),
        ])
        for j in range(half):
            reads = ram.cycle([
                PortOp(0, "r", cell(0, j)),
                PortOp(1, "r", cell(0, j + 1)),
                PortOp(2, "r", cell(1, j)),
                PortOp(3, "r", cell(1, j + 1)),
            ])
            values = []
            for automaton in (0, 1):
                acc = 0
                pair = (reads[2 * automaton], reads[2 * automaton + 1])
                for i, r in enumerate(pair):
                    if mult[i] and r:
                        acc = field.add(acc, field.mul(mult[i], r))
                values.append(acc)
            ram.cycle([
                PortOp(0, "w", cell(0, j + 2), values[0]),
                PortOp(2, "w", cell(1, j + 2), values[1]),
            ])
        final = ram.cycle([
            PortOp(0, "r", cell(0, half)),
            PortOp(1, "r", cell(0, half + 1)),
            PortOp(2, "r", cell(1, half)),
            PortOp(3, "r", cell(1, half + 1)),
        ])
        expected = self.expected_final(n)
        halves = tuple(
            PiIterationResult(
                init_state=seed,
                final_state=(final[2 * automaton], final[2 * automaton + 1]),
                expected_final=expected,
                operations=0,  # accounted on the shared RAM stats
            )
            for automaton in (0, 1)
        )
        return QuadPortResult(halves=halves)  # type: ignore[arg-type]
