"""BIST hardware-overhead model (claim C5).

The paper prices the PRT additions for a dual-port RAM -- "conversion of
the existent address registers into counters and a specific XOR-logic" --
at less than ``2^-20`` of the memory capacity.  This module reproduces
that ratio analytically from gate counts:

* the address registers become counters: one increment stage
  (~half-adder + mux) per address bit per port;
* the recurrence XOR network: the constant-multiplier XOR gates (from the
  synthesizer in :mod:`repro.gf2m.xor_synth`) plus the k-way word adder;
* a k*m-bit state/compare register and an equality comparator;
* a small fixed control FSM.

Costs are expressed in transistors (CMOS: 4T per 2-input XOR/NAND-ish
gate, 24T per DFF bit) and normalized to a 6T-SRAM cell array, so the
"ponder of the hardware overhead in comparison with the memory capacity"
is a pure ratio, no silicon needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gf2m.field import GF2m
from repro.gf2m.multiplier import constant_multiplier_matrix
from repro.gf2m.xor_synth import synthesize_greedy

__all__ = ["BistOverheadModel"]

_T_PER_XOR = 4  # transistors per 2-input gate (transmission-gate XOR)
_T_PER_DFF = 24  # transistors per flip-flop bit
_T_PER_SRAM_BIT = 6  # 6T SRAM cell
_CONTROL_FSM_T = 200  # fixed small control overhead


@dataclass
class BistOverheadModel:
    """Gate/transistor cost of the PRT BIST additions.

    Parameters
    ----------
    field:
        The word field GF(2^m) (GF(2) for bit-oriented memories).
    generator:
        Generator polynomial coefficients ``(a_0, ..., a_k)``.
    ports:
        Number of RAM ports whose address registers become counters.

    Examples
    --------
    >>> from repro.gf2 import poly_from_string
    >>> model = BistOverheadModel(GF2m(poly_from_string("1+z+z^4")),
    ...                           (1, 2, 2), ports=2)
    >>> model.overhead_ratio(n=1 << 26) < 2**-20
    True
    """

    field: GF2m
    generator: tuple[int, ...]
    ports: int = 2

    def __post_init__(self) -> None:
        if len(self.generator) < 2:
            raise ValueError("generator polynomial must have degree >= 1")
        if self.ports < 1:
            raise ValueError("need at least one port")

    @property
    def k(self) -> int:
        """Automaton stages."""
        return len(self.generator) - 1

    @property
    def m(self) -> int:
        """Word width."""
        return self.field.m

    # -- gate counts -----------------------------------------------------------

    def multiplier_xor_gates(self) -> int:
        """XOR gates of all recurrence constant multipliers, after greedy
        common-subexpression synthesis (claim C6's "optimal" multipliers)."""
        field = self.field
        inv_a0 = field.inv(self.generator[0])
        total = 0
        for a in self.generator[1:]:
            constant = field.mul(inv_a0, a)
            matrix = constant_multiplier_matrix(field, constant)
            total += synthesize_greedy(matrix).gate_count
        return total

    def adder_xor_gates(self) -> int:
        """The k-way GF(2^m) word adder: ``(k - 1) * m`` XOR gates."""
        return (self.k - 1) * self.m

    def comparator_gates(self) -> int:
        """Equality compare of the k*m-bit window: XOR per bit + OR tree."""
        bits = self.k * self.m
        return bits + max(0, bits - 1)

    def counter_bits(self, n: int) -> int:
        """Address-counter bits across all ports for an n-cell memory."""
        if n < 2:
            raise ValueError("memory must have at least 2 cells")
        return self.ports * math.ceil(math.log2(n))

    def state_register_bits(self) -> int:
        """Window/compare register: k words of m bits."""
        return self.k * self.m

    # -- transistor totals -------------------------------------------------------

    def bist_transistors(self, n: int) -> int:
        """Total transistors of the PRT additions for an n-cell memory."""
        gate_t = _T_PER_XOR * (
            self.multiplier_xor_gates()
            + self.adder_xor_gates()
            + self.comparator_gates()
        )
        # Counter: the register bits already exist (address registers);
        # the *conversion* adds an increment stage per bit, priced like a
        # gate pair, plus the window register which is genuinely new.
        counter_t = 2 * _T_PER_XOR * self.counter_bits(n)
        register_t = _T_PER_DFF * self.state_register_bits()
        return gate_t + counter_t + register_t + _CONTROL_FSM_T

    def memory_transistors(self, n: int) -> int:
        """The 6T cell array: ``6 * n * m`` transistors."""
        return _T_PER_SRAM_BIT * n * self.m

    def overhead_ratio(self, n: int) -> float:
        """BIST transistors / memory transistors (the paper's "ponder").

        Decreases ~1/n (the counter term grows only as log n); crosses the
        paper's ``2^-20`` bound around n = 2^24..2^26 cells.
        """
        return self.bist_transistors(n) / self.memory_transistors(n)

    def crossover_capacity(self, bound: float = 2**-20,
                           max_log2n: int = 40) -> int:
        """Smallest power-of-two n with ``overhead_ratio(n) < bound``."""
        for log2n in range(1, max_log2n + 1):
            n = 1 << log2n
            if self.overhead_ratio(n) < bound:
                return n
        raise ValueError(
            f"overhead never drops below {bound} up to n = 2^{max_log2n}"
        )

    def report(self, n: int) -> dict[str, float]:
        """All cost components for one memory size (used by bench E5)."""
        return {
            "n": n,
            "m": self.m,
            "ports": self.ports,
            "multiplier_xor_gates": self.multiplier_xor_gates(),
            "adder_xor_gates": self.adder_xor_gates(),
            "comparator_gates": self.comparator_gates(),
            "counter_bits": self.counter_bits(n),
            "state_register_bits": self.state_register_bits(),
            "bist_transistors": self.bist_transistors(n),
            "memory_transistors": self.memory_transistors(n),
            "overhead_ratio": self.overhead_ratio(n),
        }
