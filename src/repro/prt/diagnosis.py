"""Fault localization from a π-test run.

A failing signature says *that* the memory is faulty; the recorded write
stream says *where*.  Because the engine knows the expected stream a
priori, the first sub-iteration whose written value diverges pinpoints the
reads that fed it -- a suspect set of k+1 cells around the fault.  This is
diagnosis the pseudo-ring construction provides essentially for free (the
paper's "high degree of mobility to control the π-test experiments"), and
it narrows a follow-up bit-level probe from n cells to a constant-size
neighbourhood.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prt.pi_test import PiIteration

__all__ = ["DiagnosisReport", "diagnose_iteration"]


@dataclass(frozen=True)
class DiagnosisReport:
    """Outcome of a localization run.

    Attributes
    ----------
    detected:
        True when anything diverged (stream, verify read or signature).
    first_divergence:
        Index of the first sweep write whose value was wrong, or None
        when the stream itself stayed clean.
    suspect_cells:
        The cells whose reads fed the first diverging write (plus the
        written cell); empty when nothing diverged.
    observed, expected:
        The diverging written value and its fault-free counterpart.
    """

    detected: bool
    first_divergence: int | None
    suspect_cells: tuple[int, ...]
    observed: int | None
    expected: int | None

    def __repr__(self) -> str:
        if not self.detected:
            return "DiagnosisReport(clean)"
        if self.first_divergence is None:
            return f"DiagnosisReport(signature-only, suspects={self.suspect_cells})"
        return (
            f"DiagnosisReport(divergence@{self.first_divergence}, "
            f"suspects={self.suspect_cells}, "
            f"observed={self.observed}, expected={self.expected})"
        )


def diagnose_iteration(iteration: PiIteration, ram) -> DiagnosisReport:
    """Run ``iteration`` on ``ram`` with recording and localize the first
    divergence.

    The suspect set contains the cells read by the first diverging
    sub-iteration (the fault corrupted one of those reads) plus the cell
    the diverging value was written to (relevant for write-side faults
    like a decoder redirect).

    >>> from repro.faults import FaultInjector, StuckAtFault
    >>> from repro.memory import SinglePortRAM
    >>> iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
    >>> ram = SinglePortRAM(21)
    >>> FaultInjector([StuckAtFault(9, 0)]).install(ram)
    >>> report = diagnose_iteration(iteration, ram)
    >>> report.detected and 9 in report.suspect_cells
    True
    """
    n = ram.n
    result = iteration.run(ram, record=True)
    expected = iteration.expected_stream(n)
    traj = iteration.trajectory_for(n)
    k = iteration.k
    assert result.written_stream is not None
    for j, (observed, want) in enumerate(zip(result.written_stream, expected,
                                            strict=False)):
        if observed != want:
            read_cells = {traj[j + i] for i in range(k)}
            suspects = tuple(sorted(read_cells | {traj[j + k]}))
            return DiagnosisReport(
                detected=True,
                first_divergence=j,
                suspect_cells=suspects,
                observed=observed,
                expected=want,
            )
    if not result.passed:
        # Stream clean but the signature reads disagreed: the fault sits
        # in the final window cells themselves.
        suspects = tuple(sorted(traj[n + i] for i in range(k)))
        return DiagnosisReport(
            detected=True,
            first_divergence=None,
            suspect_cells=suspects,
            observed=None,
            expected=None,
        )
    return DiagnosisReport(
        detected=False,
        first_divergence=None,
        suspect_cells=(),
        observed=None,
        expected=None,
    )
