"""Multi-iteration schedules for the multi-port π-test schemes.

:class:`~repro.prt.schedule.PiTestSchedule` chains single-port
π-iterations into the paper's 3-iteration plan; this module does the
same for the port-parallel schemes of :mod:`repro.prt.dual_port`.  The
structural trick is that transparent verification is *cheaper* here than
on one port: the write cycle of every sub-iteration leaves ports idle
(one on the dual-port scheme, two on quad-port), and a read issued in
the same cycle senses the pre-write value -- so from the second
iteration on, the previous iteration's background is verified at **zero
extra cycles**, plus a single leading read cycle for the seed cells.

The dual-/quad-port iterations cannot invert their data stream (the
recurrence hardware of Figure 2 has no inversion tap), so the
3-iteration plan ``(B, C, B)`` varies the *seed phase* instead of
complementing the background: iteration 2 runs the same generator from a
different seed, which shifts the m-sequence and changes which cells
carry equal values -- the activation-diversity role the complement plays
in the single-port plan.

:func:`standard_multi_schedule` builds that plan for either scheme; the
:meth:`MultiPortSchedule.run` adapter lowers it once through
:func:`repro.sim.compilers.compile_multi_schedule` and replays the
grouped stream through the RAM's cycle-aware ``apply_stream``, so the
compiled and interpreted paths agree cycle for cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.gf2m.field import GF2m
from repro.memory.multiport import PortOp
from repro.prt.dual_port import DualPortPiIteration, QuadPortPiIteration
from repro.prt.pi_test import GF2

__all__ = [
    "MultiPortSchedule",
    "MultiScheduleResult",
    "standard_multi_schedule",
]


@dataclass
class MultiScheduleResult:
    """Outcome of a full multi-port schedule run.

    ``iteration_results`` mixes :class:`~repro.prt.pi_test
    .PiIterationResult` (dual-port iterations) and
    :class:`~repro.prt.dual_port.QuadPortResult` (quad-port iterations)
    in run order; both expose ``passed``.
    """

    iteration_results: list = dataclass_field(default_factory=list)
    operations: int = 0

    @property
    def passed(self) -> bool:
        """True when every iteration (and the final read-back) matched."""
        return all(r.passed for r in self.iteration_results)

    @property
    def detected(self) -> bool:
        """True when at least one iteration flagged a mismatch."""
        return not self.passed

    @property
    def failing_iterations(self) -> list[int]:
        """Indices of iterations whose signature or verification failed."""
        return [i for i, r in enumerate(self.iteration_results) if not r.passed]

    def __repr__(self) -> str:
        status = "PASS" if self.passed else f"FAIL@{self.failing_iterations}"
        return (
            f"MultiScheduleResult({status}, "
            f"{len(self.iteration_results)} iterations, "
            f"{self.operations} ops)"
        )


class MultiPortSchedule:
    """An ordered list of multi-port π-iterations run back to back.

    Accepts any mix of :class:`~repro.prt.dual_port.DualPortPiIteration`
    and :class:`~repro.prt.dual_port.QuadPortPiIteration`; the schedule's
    ``ports`` is the widest iteration's requirement.

    >>> from repro.memory import DualPortRAM
    >>> schedule = standard_multi_schedule(ports=2)
    >>> schedule.run(DualPortRAM(12)).passed
    True
    """

    def __init__(self, iterations: list, name: str = "custom",
                 verify: bool = False, pause_between: int = 0):
        if not iterations:
            raise ValueError("a schedule needs at least one iteration")
        if pause_between < 0:
            raise ValueError("pause must be non-negative")
        self._iterations = list(iterations)
        self._name = name
        self._verify = verify
        self._pause_between = pause_between

    @property
    def iterations(self) -> tuple:
        """The configured iterations, in run order."""
        return tuple(self._iterations)

    @property
    def name(self) -> str:
        """Schedule label for reports."""
        return self._name

    @property
    def verify(self) -> bool:
        """True when iterations 2+ transparently verify the previous
        iteration's background before overwriting it (the verify reads
        ride the write cycles' idle ports -- zero extra cycles beyond
        one leading read cycle per iteration)."""
        return self._verify

    @property
    def pause_between(self) -> int:
        """Idle cycles inserted between iterations (and before the final
        read-back) -- the retention-decay window, as on
        :class:`~repro.prt.schedule.PiTestSchedule`."""
        return self._pause_between

    @property
    def ports(self) -> int:
        """Ports the widest iteration needs per memory cycle."""
        return max(getattr(it, "ports", 2) for it in self._iterations)

    def __len__(self) -> int:
        return len(self._iterations)

    def operation_count(self, n: int) -> int:
        """Total memory operations on an n-cell RAM.

        Each verifying iteration (the second onwards) adds ``n`` sweep
        verify reads plus ``ports`` leading seed-cell reads; the final
        read-back pass adds ``n`` more.
        """
        total = sum(it.operation_count(n) for it in self._iterations)
        if self._verify:
            total += sum(n + it.ports for it in self._iterations[1:])
            total += n
        return total

    def run(self, ram, stop_on_failure: bool = False,
            compiled: bool = True) -> MultiScheduleResult:
        """Execute all iterations; optionally abort at the first mismatch.

        Thin adapter over :mod:`repro.sim`, exactly like
        :meth:`~repro.prt.schedule.PiTestSchedule.run`: the schedule is
        lowered once (:func:`repro.sim.compilers.compile_multi_schedule`)
        and replayed through the RAM's cycle-aware ``apply_stream``;
        ``compiled=False`` (or a front-end without ``apply_stream``)
        takes the interpreted path, which stays byte-identical --
        including ``RamStats``.
        """
        if compiled and hasattr(ram, "apply_stream"):
            from repro.sim.compilers import cached_multi_schedule_stream
            from repro.sim.replay import replay_multi_schedule

            stream = cached_multi_schedule_stream(self, ram.n, ram.m)
            return replay_multi_schedule(stream, ram,
                                         stop_on_failure=stop_on_failure)
        return self.run_interpreted(ram, stop_on_failure=stop_on_failure)

    def run_interpreted(self, ram,
                        stop_on_failure: bool = False) -> MultiScheduleResult:
        """The original cycle-by-cycle interpreted execution.

        Reference implementation for the equivalence tests; needs a RAM
        exposing ``cycle``/``idle``/``stats`` with at least
        :attr:`ports` ports.
        """
        result = MultiScheduleResult()
        previous_background: list[int] | None = None
        stats = ram.stats
        for index, iteration in enumerate(self._iterations):
            if index and self._pause_between:
                ram.idle(self._pause_between)
            before = stats.reads + stats.writes
            it_result = iteration.run(
                ram, previous_background=previous_background)
            result.iteration_results.append(it_result)
            result.operations += stats.reads + stats.writes - before
            if stop_on_failure and not it_result.passed:
                return result
            if self._verify:
                previous_background = iteration.background_after(ram.n)
        if self._pause_between:
            ram.idle(self._pause_between)
        if self._verify and previous_background is not None:
            n = ram.n
            ports = self.ports
            mismatches = 0
            # Stride-2 order (evens, then odds), read ports-at-a-time --
            # the multi-port RAM covers the pass in ceil(n / ports)
            # cycles; see PiTestSchedule.run_interpreted for why the
            # ordering closes the last stuck-open blind spot.
            order = list(range(0, n, 2)) + list(range(1, n, 2))
            for chunk_start in range(0, n, ports):
                chunk = order[chunk_start:chunk_start + ports]
                reads = ram.cycle([
                    PortOp(port, "r", addr)
                    for port, addr in enumerate(chunk)
                ])
                for port, addr in enumerate(chunk):
                    if reads[port] != previous_background[addr]:
                        mismatches += 1
            result.operations += n
            if mismatches:
                # Attribute the final-pass mismatches to the last
                # iteration, as the single-port scheduler does.
                result.iteration_results[-1].verify_mismatches += mismatches
        return result

    def __repr__(self) -> str:
        return (
            f"MultiPortSchedule({self._name!r}, "
            f"{len(self._iterations)} iterations, ports={self.ports})"
        )


def standard_multi_schedule(ports: int = 2,
                            field: GF2m | None = None,
                            generator: tuple[int, ...] | None = None,
                            seed: tuple[int, ...] | None = None,
                            verify: bool = True,
                            pause_between: int = 0) -> MultiPortSchedule:
    """The 3-iteration verifying plan for a multi-port scheme.

    Builds ``(B, C, B)`` -- base seed, phase-shifted seed, base seed --
    over the dual-port (``ports=2``) or quad-port (``ports=4``) scheme.
    The port schemes cannot invert their stream, so the middle iteration
    varies the seed *phase* instead of complementing the background (the
    phase shift changes which cells carry equal values, the same
    activation-diversity role the complement plays in
    :func:`~repro.prt.schedule.standard_schedule`); the alternate seed
    is derived exactly as in
    :func:`~repro.prt.schedule.extended_schedule`.

    Defaults mirror the single-port factories: GF(2) with the paper's
    k = 2 generator ``1 + x + x^2`` (``1 + 2x + 2x^2`` on extension
    fields) and seed ``(0, 1)``.
    """
    if ports not in (2, 4):
        raise ValueError(f"ports must be 2 or 4, got {ports}")
    field = field if field is not None else GF2
    if generator is None:
        generator = (1, 1, 1) if field.m == 1 else (1, 2, 2)
    if seed is None:
        seed = (0, 1)
    seed = tuple(seed)
    seed_c = tuple(reversed(seed))
    if seed_c == seed or all(s == 0 for s in seed_c):
        seed_c = (seed[0] ^ 1,) + seed[1:]
        if all(s == 0 for s in seed_c):
            seed_c = (1,) * len(seed)
    cls = DualPortPiIteration if ports == 2 else QuadPortPiIteration
    iterations = [
        cls(field=field, generator=generator, seed=seed),
        cls(field=field, generator=generator, seed=seed_c),
        cls(field=field, generator=generator, seed=seed),
    ]
    return MultiPortSchedule(iterations, name=f"multi-{ports}p-3",
                             verify=verify, pause_between=pause_between)
