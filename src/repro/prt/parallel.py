"""Parallel bit-slice π-testing for word-oriented memories (claim C7).

The paper's WOM scheme for *intra-word* faults: view the m-bit memory as m
independent bit planes and run m bit-oriented π-tests simultaneously --
every word read feeds m bit recurrences at once, every word write commits m
new bits.  Two wirings are offered (the paper: "two different π-testing can
be performed: (1) with parallel or (2) with random trajectories ...
controlled by a small hardware overhead that can be programmed
externally"):

* **parallel** -- slice ``l`` of the new word depends on slice ``l`` of the
  two read words (identity lane wiring).  Cheap, but bit planes never
  interact, so a symmetric intra-word coupling can corrupt two planes
  consistently and hide;
* **random** -- a seeded lane permutation wires slice ``l``'s recurrence to
  *different* source slices of the read words.  Planes cross, so intra-word
  aggressor/victim pairs land in different automata and the corruption
  de-synchronizes the signatures.

Both wirings are GF(2)-linear, so the expected final window is still
computable a priori by the mirror-image software model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.prt.trajectory import Trajectory, ascending

__all__ = ["BitSlicePiIteration", "BitSliceResult", "lane_permutations"]


def lane_permutations(m: int, mode: str, seed: int = 0) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Lane wirings ``(sigma, tau)`` for the two read operands.

    ``mode="parallel"`` gives identity wirings; ``mode="random"`` gives two
    seeded permutations (guaranteed not both identity for m >= 2).

    >>> lane_permutations(4, "parallel")
    ((0, 1, 2, 3), (0, 1, 2, 3))
    """
    identity = tuple(range(m))
    if mode == "parallel":
        return identity, identity
    if mode != "random":
        raise ValueError(f"mode must be 'parallel' or 'random', got {mode!r}")
    rng = random.Random(seed)
    while True:
        sigma = list(identity)
        tau = list(identity)
        rng.shuffle(sigma)
        rng.shuffle(tau)
        if m < 2 or tuple(sigma) != identity or tuple(tau) != identity:
            return tuple(sigma), tuple(tau)


@dataclass
class BitSliceResult:
    """Outcome of a bit-slice π-iteration.

    ``final_state`` / ``expected_final`` are whole memory words; the m bit
    automata are judged together (their k-cell windows share addresses).
    ``failing_slices`` pinpoints which bit planes mismatched.
    """

    init_state: tuple[int, ...]
    final_state: tuple[int, ...]
    expected_final: tuple[int, ...]
    operations: int

    @property
    def passed(self) -> bool:
        """True when every slice's final window matched."""
        return self.final_state == self.expected_final

    @property
    def failing_slices(self) -> list[int]:
        """Bit positions whose plane mismatched somewhere in the window."""
        out = []
        width = max(
            (v.bit_length() for v in self.final_state + self.expected_final),
            default=0,
        )
        for bit in range(width):
            for got, want in zip(self.final_state, self.expected_final,
                                 strict=True):
                if ((got >> bit) & 1) != ((want >> bit) & 1):
                    out.append(bit)
                    break
        return out

    def __repr__(self) -> str:
        status = "PASS" if self.passed else f"FAIL(slices={self.failing_slices})"
        return f"BitSliceResult({status})"


class BitSlicePiIteration:
    """m parallel bit-oriented π-tests over a WOM (k = 2 per slice).

    Each slice ``l`` follows the BOM recurrence
    ``new[l] = r_a[sigma(l)] XOR r_b[tau(l)]`` where ``r_a, r_b`` are the
    two words read by the sub-iteration and ``(sigma, tau)`` is the lane
    wiring.

    Parameters
    ----------
    m:
        Word width (number of slices).
    seed:
        Two seed *words* ``(d_0, d_1)``; slice ``l`` of the automata is
        seeded with their ``l``-th bits, and every slice pair must be
        non-zero (an all-zero slice idles).  Default is the checkerboard
        pair ``(0101..., 1010...)``: adjacent slices run phase-shifted
        streams, so the words are non-uniform and the lane wiring has
        real mixing to do.  (Uniform seeds like ``(0, 1111)`` degenerate:
        every word is all-0s or all-1s and permuting lanes changes
        nothing.)
    mode:
        ``"parallel"`` or ``"random"`` lane wiring.
    wiring_seed:
        Seed for the random lane permutations (the "external programming").

    Examples
    --------
    >>> from repro.memory import SinglePortRAM
    >>> it = BitSlicePiIteration(m=4, mode="random", wiring_seed=3)
    >>> it.run(SinglePortRAM(16, m=4)).passed
    True
    """

    def __init__(self, m: int, seed: tuple[int, int] | None = None,
                 mode: str = "parallel", wiring_seed: int = 0,
                 trajectory: Trajectory | None = None):
        if m < 1:
            raise ValueError(f"word width must be >= 1, got {m}")
        self._m = m
        self._mask = (1 << m) - 1
        if seed is None:
            checker = 0
            for bit in range(0, m, 2):
                checker |= 1 << bit
            seed = (checker, checker ^ self._mask)
        seed = tuple(seed)
        if len(seed) != 2:
            raise ValueError("bit-slice scheme uses k = 2: two seed words")
        for s in seed:
            if not 0 <= s <= self._mask:
                raise ValueError(f"seed word {s:#x} does not fit {m} bits")
        if any((seed[0] >> lane) & 1 == 0 and (seed[1] >> lane) & 1 == 0
               for lane in range(m)):
            raise ValueError(
                "every bit slice needs a non-zero seed pair; "
                f"seeds {seed[0]:#x},{seed[1]:#x} leave a slice all-zero"
            )
        self._seed = seed
        self._mode = mode
        self._sigma, self._tau = lane_permutations(m, mode, wiring_seed)
        self._trajectory = trajectory

    @property
    def m(self) -> int:
        """Word width / number of slices."""
        return self._m

    @property
    def mode(self) -> str:
        """``"parallel"`` or ``"random"``."""
        return self._mode

    @property
    def wiring(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The lane permutations ``(sigma, tau)``."""
        return self._sigma, self._tau

    @property
    def seed(self) -> tuple[int, int]:
        """The two seed words."""
        return self._seed

    def _next_word(self, r_a: int, r_b: int) -> int:
        word = 0
        for lane in range(self._m):
            bit = ((r_a >> self._sigma[lane]) & 1) \
                ^ ((r_b >> self._tau[lane]) & 1)
            if bit:
                word |= 1 << lane
        return word

    def expected_stream(self, n: int) -> list[int]:
        """Fault-free written words, in trajectory order (software mirror)."""
        window = list(self._seed)
        out = []
        for _ in range(n):
            new = self._next_word(window[0], window[1])
            out.append(new)
            window = [window[1], new]
        return out

    def expected_final(self, n: int) -> tuple[int, ...]:
        """Expected final 2-word window after the n-step pass."""
        window = list(self._seed)
        for _ in range(n):
            window = [window[1], self._next_word(window[0], window[1])]
        return tuple(window)

    def trajectory_for(self, n: int) -> Trajectory:
        """The (shared-address) trajectory on an n-cell memory."""
        if self._trajectory is not None:
            if self._trajectory.n != n:
                raise ValueError(
                    f"trajectory covers {self._trajectory.n} addresses, "
                    f"memory has {n}"
                )
            return self._trajectory
        return ascending(n)

    def run(self, ram) -> BitSliceResult:
        """Execute on a single-port WOM front-end."""
        if ram.m != self._m:
            raise ValueError(
                f"RAM cell width m={ram.m} does not match scheme width {self._m}"
            )
        n = ram.n
        if n < 3:
            raise ValueError(f"memory must have more than 2 cells, got {n}")
        traj = self.trajectory_for(n)
        operations = 0
        for i, value in enumerate(self._seed):
            ram.write(traj[i], value)
            operations += 1
        for j in range(n):
            r_a = ram.read(traj[j])
            r_b = ram.read(traj[j + 1])
            operations += 2
            ram.write(traj[j + 2], self._next_word(r_a, r_b))
            operations += 1
        final = (ram.read(traj[n]), ram.read(traj[n + 1]))
        operations += 2
        return BitSliceResult(
            init_state=self._seed,
            final_state=final,
            expected_final=self.expected_final(n),
            operations=operations,
        )

    def __repr__(self) -> str:
        return (
            f"BitSlicePiIteration(m={self._m}, mode={self._mode!r}, "
            f"seed=({self._seed[0]:#x}, {self._seed[1]:#x}))"
        )
