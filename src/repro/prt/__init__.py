"""Pseudo-ring testing (PRT) -- the paper's contribution.

PRT tests a RAM by emulating a linear automaton *in the memory array
itself*.  One π-test iteration seeds ``k`` cells, then walks the address
space: each sub-iteration reads ``k`` neighbouring cells (along a
*trajectory*) and writes their GF(2^m)-linear combination -- defined by a
generator polynomial ``g(x)`` -- into the next cell.  The written stream
equals the output of a "virtual" LFSR, so the expected final state ``Fin*``
is computable a priori, and when the pass length is a multiple of the LFSR
period the automaton returns to its initial state (the *pseudo-ring*).

Modules:

* :mod:`repro.prt.trajectory` -- ascending / descending / seeded-random
  address orders (quality factor 3 of claim C1),
* :mod:`repro.prt.pi_test` -- the single-port π-iteration engine for BOM
  and WOM (Figure 1; complexity 3n + O(1), claim C4),
* :mod:`repro.prt.schedule` -- multi-iteration plans, including the
  3-iteration schedule behind claim C3,
* :mod:`repro.prt.dual_port` -- the two-port scheme of Figure 2 (2n
  cycles) and the quad-port multi-LFSR scheme (n + O(1) cycles),
* :mod:`repro.prt.multi_schedule` -- verifying schedules chaining the
  multi-port iterations (transparent verification rides the write
  cycles' idle ports at zero cycle cost),
* :mod:`repro.prt.parallel` -- parallel bit-slice WOM testing with
  identity or permuted lane wiring (intra-word faults, claim C7),
* :mod:`repro.prt.misr` -- an optional MISR response compactor used by the
  aliasing ablation,
* :mod:`repro.prt.bist` -- the BIST hardware-overhead model (claim C5:
  overhead < 2^-20 of memory capacity).
"""

from repro.prt.trajectory import (
    Trajectory,
    ascending,
    descending,
    random_trajectory,
)
from repro.prt.pi_test import PiIteration, PiIterationResult
from repro.prt.schedule import (
    PiTestSchedule,
    ScheduleResult,
    standard_schedule,
    extended_schedule,
)
from repro.prt.dual_port import (
    DualPortPiIteration,
    QuadPortPiIteration,
    QuadPortResult,
)
from repro.prt.multi_schedule import (
    MultiPortSchedule,
    MultiScheduleResult,
    standard_multi_schedule,
)
from repro.prt.parallel import BitSlicePiIteration, lane_permutations
from repro.prt.misr import MISR
from repro.prt.bist import BistOverheadModel
from repro.prt.diagnosis import DiagnosisReport, diagnose_iteration
from repro.prt.sizing import (
    iter_two_tap_generators,
    ring_aligned_generators,
    ring_alignment_report,
)

__all__ = [
    "Trajectory",
    "ascending",
    "descending",
    "random_trajectory",
    "PiIteration",
    "PiIterationResult",
    "PiTestSchedule",
    "ScheduleResult",
    "standard_schedule",
    "extended_schedule",
    "DualPortPiIteration",
    "QuadPortPiIteration",
    "QuadPortResult",
    "MultiPortSchedule",
    "MultiScheduleResult",
    "standard_multi_schedule",
    "BitSlicePiIteration",
    "lane_permutations",
    "MISR",
    "BistOverheadModel",
    "DiagnosisReport",
    "diagnose_iteration",
    "iter_two_tap_generators",
    "ring_aligned_generators",
    "ring_alignment_report",
]
