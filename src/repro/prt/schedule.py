"""Multi-iteration π-test schedules (claim C3).

A single π-iteration misses faults whose activation happens "behind" the
sweep (an aggressor written after its victim was last read) and faults that
the iteration's data background never excites (a SA0 in a cell whose
fault-free background value is 0).  The paper states that *three* π-test
iterations with a specific test-data background detect all single- and
multi-cell faults.

:func:`standard_schedule` constructs the 3-iteration plan this library
validates empirically (experiment E3): the triple ``(B, ~B, B)`` -- one
background, its complement, and the background again -- with transparent
verification and a final stride-2 read-back.  This guarantees, per bit of
every cell: both stored polarities, both write-transition directions, and
an observing read after every possible corruption window; measured
coverage is 100 % of the single-cell universe (SAF, TF, SOF), all
address-decoder faults, bridges, CFin and CFst.  The idempotent-coupling
(CFid) remainder provably needs more activation events than three
iterations provide; :func:`extended_schedule` adds a descending
complement pair and converges on that class too.

A useful structural property, inherited from the π-iteration: every sweep
read targets a cell written *earlier in the same iteration*, so the
schedule's outcome is independent of the memory's power-up state --
exactly what an embedded self-test needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.gf2m.field import GF2m
from repro.prt.pi_test import GF2, PiIteration, PiIterationResult
from repro.prt.trajectory import Trajectory, ascending, descending

__all__ = [
    "PiTestSchedule",
    "ScheduleResult",
    "standard_schedule",
    "extended_schedule",
]


@dataclass
class ScheduleResult:
    """Outcome of a full schedule run.

    ``passed`` is True only when *every* iteration matched its expected
    final state; a fault is *detected* when any iteration fails.
    """

    iteration_results: list[PiIterationResult] = dataclass_field(
        default_factory=list
    )
    operations: int = 0

    @property
    def passed(self) -> bool:
        """True when all iterations matched Fin*."""
        return all(r.passed for r in self.iteration_results)

    @property
    def detected(self) -> bool:
        """True when at least one iteration flagged a mismatch."""
        return not self.passed

    @property
    def failing_iterations(self) -> list[int]:
        """Indices of iterations whose signature mismatched."""
        return [i for i, r in enumerate(self.iteration_results) if not r.passed]

    def __repr__(self) -> str:
        status = "PASS" if self.passed else f"FAIL@{self.failing_iterations}"
        return (
            f"ScheduleResult({status}, {len(self.iteration_results)} iterations, "
            f"{self.operations} ops)"
        )


class PiTestSchedule:
    """An ordered list of π-iterations run back to back.

    >>> from repro.memory import SinglePortRAM
    >>> schedule = standard_schedule()
    >>> schedule.run(SinglePortRAM(12)).passed
    True
    """

    def __init__(self, iterations: list[PiIteration], name: str = "custom",
                 verify: bool = False, pause_between: int = 0):
        if not iterations:
            raise ValueError("a schedule needs at least one iteration")
        if pause_between < 0:
            raise ValueError("pause must be non-negative")
        self._iterations = list(iterations)
        self._name = name
        self._verify = verify
        self._pause_between = pause_between

    @property
    def iterations(self) -> tuple[PiIteration, ...]:
        """The configured iterations, in run order."""
        return tuple(self._iterations)

    @property
    def name(self) -> str:
        """Schedule label for reports."""
        return self._name

    @property
    def verify(self) -> bool:
        """True when iterations 2+ transparently verify the previous
        iteration's background before overwriting it (see
        :meth:`PiIteration.run`)."""
        return self._verify

    @property
    def pause_between(self) -> int:
        """Idle cycles inserted between iterations (and before the final
        read-back).  A non-zero pause lets data-retention faults decay
        while a background rests, so the next verify pass catches them --
        the PRT counterpart of the March ``Del`` element."""
        return self._pause_between

    def __len__(self) -> int:
        return len(self._iterations)

    def operation_count(self, n: int) -> int:
        """Total memory operations on an n-cell RAM.

        Pure mode: three 3n-shaped iterations cost ``9n + O(1)`` -- versus
        e.g. March C-'s ``10n`` (the E9 comparison).  Verifying mode adds
        one read per write from the second iteration on plus the final
        read-back pass: ``~12n``.
        """
        total = sum(it.operation_count(n) for it in self._iterations)
        if self._verify:
            # One extra read per write for every iteration after the first,
            # plus the final full read-back pass.
            total += (len(self._iterations) - 1) * (n + self._iterations[0].k)
            total += n
        return total

    def run(self, ram, stop_on_failure: bool = False,
            compiled: bool = True) -> ScheduleResult:
        """Execute all iterations; optionally abort at the first mismatch.

        In verifying mode a final read-back pass checks the last
        iteration's complete background (without it, a corruption landing
        after a cell's last sweep read in the *final* iteration would
        escape -- there is no later iteration to verify it).

        This is a thin adapter over :mod:`repro.sim`: the schedule is
        lowered once (:func:`repro.sim.compilers.compile_schedule`) and
        replayed through the RAM's bulk ``apply_stream`` entry point;
        ``compiled=False`` forces the original interpreted path
        (:meth:`run_interpreted`), which stays byte-identical.  RAM
        front-ends without ``apply_stream`` fall back to it
        automatically.
        """
        if compiled and hasattr(ram, "apply_stream"):
            from repro.sim.compilers import cached_schedule_stream
            from repro.sim.replay import replay_schedule

            stream = cached_schedule_stream(self, ram.n, ram.m)
            return replay_schedule(stream, ram, stop_on_failure=stop_on_failure)
        return self.run_interpreted(ram, stop_on_failure=stop_on_failure)

    def run_interpreted(self, ram, stop_on_failure: bool = False) -> ScheduleResult:
        """The original per-operation interpreted schedule execution.

        Reference implementation for the equivalence tests and the
        campaign-engine benchmark baseline.
        """
        result = ScheduleResult()
        previous_background: list[int] | None = None
        for index, iteration in enumerate(self._iterations):
            if index and self._pause_between:
                ram.idle(self._pause_between)
            it_result = iteration.run(ram, previous_background=previous_background)
            result.iteration_results.append(it_result)
            result.operations += it_result.operations
            if stop_on_failure and not it_result.passed:
                return result
            if self._verify:
                previous_background = iteration.background_after(ram.n)
        if self._pause_between:
            ram.idle(self._pause_between)
        if self._verify and previous_background is not None:
            mismatches = 0
            # Stride-2 order (evens, then odds): each cell is sensed right
            # after its distance-2 neighbour.  The sweep itself compares at
            # distance 1 and the verify reads at distance 2 with inverted
            # polarity, so this pass closes the last stuck-open blind spot
            # (cells whose whole neighbourhood carries equal values).
            order = list(range(0, ram.n, 2)) + list(range(1, ram.n, 2))
            for addr in order:
                if ram.read(addr) != previous_background[addr]:
                    mismatches += 1
            result.operations += ram.n
            if mismatches:
                # Attribute the final-pass mismatches to the last iteration.
                result.iteration_results[-1].verify_mismatches += mismatches
        return result

    def __repr__(self) -> str:
        return f"PiTestSchedule({self._name!r}, {len(self._iterations)} iterations)"


def standard_schedule(field: GF2m | None = None,
                      generator: tuple[int, ...] | None = None,
                      seed: tuple[int, ...] | None = None,
                      n: int | None = None,
                      verify: bool = True,
                      pause_between: int = 0) -> PiTestSchedule:
    """The 3-iteration schedule behind claim C3 (see module docstring).

    Parameters
    ----------
    field:
        GF(2^m); default GF(2) for bit-oriented memories.
    generator:
        Generator polynomial ``(a_0, ..., a_k)``.  Defaults: the two-tap
        primitive ``1 + x^2 + x^3`` for GF(2) (3n-shaped sub-iterations
        with a period-7 m-sequence background -- the paper's own k=2
        polynomial ``1 + x + x^2`` generates a period-3 stream with no
        adjacent 00 pattern and provably cannot excite several coupling
        classes), and the paper's ``g = 1 + 2x + 2x^2`` for wider words.
    seed:
        Seed of the shared automaton (all three iterations run the same
        stream; iteration 2 stores its complement via data inversion).
    n:
        Memory size, used only to pre-build explicit trajectories; omit
        and every iteration defaults to ascending at run time.
    verify:
        Transparent verification from iteration 2 on (the mode that
        reaches full coverage; ``False`` gives the paper's pure
        signature-only scheme at 9n instead of ~11n).
    """
    field = field if field is not None else GF2
    if generator is None:
        generator = (1, 0, 1, 1) if field.m == 1 else (1, 2, 2)
    if seed is None:
        k = len(generator) - 1
        seed = (0,) * (k - 1) + (1,)
    seed = tuple(seed)
    trajectories: list[Trajectory | None] = (
        [ascending(n), ascending(n), ascending(n)] if n is not None
        else [None, None, None])
    # The "specific TDB" (claim C3) this library validates -- the triple
    # (B, ~B, B) over one trajectory:
    #   1. base iteration lays background B;
    #   2. the SAME automaton inverted lays exactly ~B: every bit of every
    #      cell is guaranteed to hold both polarities, and the B -> ~B
    #      rewrite flips every bit (one transition direction per bit);
    #   3. re-laying B flips every bit back (the other direction), and its
    #      leftover background is checked by the final read-back pass.
    # Together with transparent verification this detects the complete
    # single-cell universe (SAF, TF, SOF, DRF-with-pause), all AFs and
    # bridges; the idempotent-coupling remainder needs the 5-iteration
    # extended schedule (see module docstring and experiment E3).
    iterations = [
        PiIteration(field=field, generator=generator, seed=seed,
                    trajectory=trajectories[0]),
        PiIteration(field=field, generator=generator, seed=seed,
                    trajectory=trajectories[1], invert=True),
        PiIteration(field=field, generator=generator, seed=seed,
                    trajectory=trajectories[2]),
    ]
    return PiTestSchedule(iterations, name="standard-3", verify=verify,
                          pause_between=pause_between)


def extended_schedule(field: GF2m | None = None,
                      generator: tuple[int, ...] | None = None,
                      seed: tuple[int, ...] | None = None,
                      n: int | None = None,
                      verify: bool = True) -> PiTestSchedule:
    """The 5-iteration schedule ``[B, ~B, B, C(desc), ~C(desc)]`` that
    closes most of the coupling-fault gap the 3-iteration plan provably
    has.

    The 3-iteration triple gives every cell only three write transitions,
    but the full idempotent-coupling universe (CFid up/down x force-to-0/1)
    needs the aggressor to fire **both** directions with the victim
    observed in **both** states -- four well-placed events.  The extension
    keeps the complete ``(B, ~B, B)`` triple (so everything the standard
    schedule detects stays detected) and appends a normal/inverted pair on
    a *descending* trajectory with a different seed phase ``C``:

    * the descending pair reverses aggressor/victim sweep order,
    * the new phase changes which cells carry equal values, multiplying
      the (direction, victim-state) activation combinations,
    * transparent verification plus the final read-back observes every
      leftover corruption.

    Measured on the standard universe this reaches ~97 % (the residue is
    CFid pairs whose required activation pattern two LFSR phases still
    miss; appending further rotated pairs converges to 100 % -- see
    experiment E3).  Cost: ~``(5*3 + 4 + 1)n = 20n`` with verification --
    comparable to March B (17n), which targets the same CF coverage.
    """
    field = field if field is not None else GF2
    if generator is None:
        generator = (1, 0, 1, 1) if field.m == 1 else (1, 2, 2)
    if seed is None:
        k = len(generator) - 1
        seed = (0,) * (k - 1) + (1,)
    seed = tuple(seed)
    seed_c = tuple(reversed(seed))
    if seed_c == seed or all(s == 0 for s in seed_c):
        seed_c = (seed[0] ^ 1,) + seed[1:]
        if all(s == 0 for s in seed_c):
            seed_c = (1,) * len(seed)
    if n is not None:
        asc, desc = ascending(n), descending(n)
        trajectories: list[Trajectory | None] = [asc, asc, asc, desc, desc]
    else:
        trajectories = [None] * 5
    iterations = [
        PiIteration(field=field, generator=generator, seed=seed,
                    trajectory=trajectories[0]),
        PiIteration(field=field, generator=generator, seed=seed,
                    trajectory=trajectories[1], invert=True),
        PiIteration(field=field, generator=generator, seed=seed,
                    trajectory=trajectories[2]),
        PiIteration(field=field, generator=generator, seed=seed_c,
                    trajectory=trajectories[3]),
        PiIteration(field=field, generator=generator, seed=seed_c,
                    trajectory=trajectories[4], invert=True),
    ]
    return PiTestSchedule(iterations, name="extended-5", verify=verify)
