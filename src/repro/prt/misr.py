"""Multiple-input signature register (MISR) -- optional response compactor.

The paper compares ``Fin`` against ``Fin*`` directly (a k-word window), so
no compaction is strictly needed.  Industrial BIST often compacts *every*
read response into a MISR instead; that trades comparator width for a small
aliasing probability (a corrupted response sequence mapping to the golden
signature), classically ``2^-m`` for an m-bit MISR with a primitive
feedback polynomial.  The E10 ablation uses this class to measure aliasing
of window-compare vs MISR-compare.
"""

from __future__ import annotations

from repro.gf2.irreducible import is_irreducible
from repro.gf2.poly import degree

__all__ = ["MISR"]


class MISR:
    """An m-bit MISR with feedback polynomial ``poly`` (degree m).

    Each :meth:`absorb` shifts the register (Galois form) and XORs an m-bit
    response word in.

    >>> misr = MISR(0b10011)
    >>> for word in (0x3, 0xA, 0xF):
    ...     misr.absorb(word)
    >>> misr.signature != MISR(0b10011).signature
    True
    """

    def __init__(self, poly: int, initial: int = 0):
        m = degree(poly)
        if m < 1:
            raise ValueError("feedback polynomial must have degree >= 1")
        if not is_irreducible(poly):
            raise ValueError(
                "MISR feedback polynomial should be irreducible "
                "(aliasing guarantees depend on it)"
            )
        self._poly = poly
        self._m = m
        self._mask = (1 << m) - 1
        if not 0 <= initial <= self._mask:
            raise ValueError(f"initial state {initial:#x} does not fit {m} bits")
        self._state = initial
        self._initial = initial
        self._absorbed = 0

    @property
    def m(self) -> int:
        """Register width in bits."""
        return self._m

    @property
    def signature(self) -> int:
        """Current register contents."""
        return self._state

    @property
    def absorbed(self) -> int:
        """Number of words absorbed so far."""
        return self._absorbed

    def absorb(self, word: int) -> None:
        """Clock the register once with an m-bit response word."""
        if not 0 <= word <= self._mask:
            raise ValueError(f"response word {word:#x} does not fit {self._m} bits")
        # Galois shift: multiply state by x mod poly, then add the input.
        carry = (self._state >> (self._m - 1)) & 1
        self._state = (self._state << 1) & self._mask
        if carry:
            self._state ^= self._poly & self._mask
        self._state ^= word
        self._absorbed += 1

    def absorb_all(self, words) -> int:
        """Absorb an iterable of words; returns the final signature."""
        for word in words:
            self.absorb(word)
        return self._state

    def reset(self) -> None:
        """Restore the initial state and counter."""
        self._state = self._initial
        self._absorbed = 0

    def __repr__(self) -> str:
        return f"MISR(m={self._m}, signature={self._state:#x}, absorbed={self._absorbed})"
