"""The π-test iteration: PRT on a single-port RAM (paper §2, Figure 1).

One π-test iteration over an n-cell memory:

1. **Init** -- write the seed words ``d_0 .. d_{k-1}`` into the first k
   trajectory cells (k writes).
2. **Sweep** -- for ``j = 0 .. n-1``: read cells ``traj[j] .. traj[j+k-1]``,
   compute the virtual-LFSR recurrence value, write it into
   ``traj[j+k]`` (indices cyclic).  Each sub-iteration re-reads cells the
   previous one wrote/read -- that is deliberate: the reads *are* the test
   stimulus, and the recurrence propagates any corruption forward.
3. **Signature** -- read the final k-cell window ``traj[n] .. traj[n+k-1]``
   (= the first k cells again, thanks to the cyclic wrap) and compare with
   the expected state ``Fin*`` of the reference LFSR after n steps.

For ``k = 2`` the sweep costs ``2 reads + 1 write`` per sub-iteration:
``3n + 2k`` operations total, the paper's O(3n) (claim C4).  If the LFSR
period divides n, ``Fin* == Init`` -- the pseudo-ring closes and the
comparator needs no stored golden value at all.

The same engine covers BOM and WOM: a bit-oriented memory is the m = 1
case with the field GF(2) (modulus ``z + 1``) and generator coefficients
in {0, 1}; the paper's BOM recurrence ``w = r XOR r`` is the generator
``g(x) = 1 + x + x^2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gf2m.field import GF2m
from repro.gf2m.poly_ext import wpoly, wpoly_to_string, wpoly_x_pow_order
from repro.lfsr.word_lfsr import WordLFSR
from repro.prt.trajectory import Trajectory, ascending

__all__ = ["PiIteration", "PiIterationResult"]

GF2 = GF2m(0b11)
"""The degenerate field GF(2), used for bit-oriented memories."""


@dataclass
class PiIterationResult:
    """Outcome of one π-test iteration.

    Attributes
    ----------
    init_state:
        The seed window ``(d_0, ..., d_{k-1})``.
    final_state:
        The k words read back from the final window.
    expected_final:
        ``Fin*``: the reference LFSR state after n steps.
    operations:
        Memory operations issued (reads + writes).
    written_stream:
        The values written during the sweep, in trajectory order
        (only populated when the iteration is run with ``record=True``).
    """

    init_state: tuple[int, ...]
    final_state: tuple[int, ...]
    expected_final: tuple[int, ...]
    operations: int
    written_stream: list[int] | None = None
    verify_mismatches: int = 0

    @property
    def passed(self) -> bool:
        """True when the observed final state matches ``Fin*`` and every
        verified background read (if any) matched."""
        return self.final_state == self.expected_final and self.verify_mismatches == 0

    @property
    def ring_closed(self) -> bool:
        """True when the automaton returned exactly to its initial state."""
        return self.final_state == self.init_state

    def __repr__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"PiIterationResult({status}, Init={self.init_state}, "
            f"Fin={self.final_state}, Fin*={self.expected_final})"
        )


class PiIteration:
    """One configured π-test iteration (single-port).

    Parameters
    ----------
    field:
        Coefficient field GF(2^m); must match the RAM's cell width.
        Use :data:`GF2` (or ``field=None``) for bit-oriented memories.
    generator:
        Generator polynomial coefficients ``(a_0, ..., a_k)``, field
        elements, ``a_0 != 0 and a_k != 0``.  Default is the paper's BOM
        polynomial ``1 + x + x^2`` i.e. ``(1, 1, 1)``.
    seed:
        Initial window ``(d_0, ..., d_{k-1})``.  Must not be all-zero
        (the automaton would idle at 0 and test nothing).
    trajectory:
        Address order; defaults to ascending when the RAM size is known at
        run time.

    Examples
    --------
    >>> from repro.memory import SinglePortRAM
    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> it = PiIteration(field=F, generator=(1, 2, 2), seed=(0, 1))
    >>> result = it.run(SinglePortRAM(255, m=4))
    >>> result.passed, result.ring_closed       # period 255 divides n=255
    (True, True)
    """

    def __init__(self, field: GF2m | None = None,
                 generator: tuple[int, ...] = (1, 1, 1),
                 seed: tuple[int, ...] = (0, 1),
                 trajectory: Trajectory | None = None,
                 invert: bool = False):
        self._field = field if field is not None else GF2
        generator = tuple(generator)
        seed = tuple(seed)
        # WordLFSR validates generator/seed ranges and a_0, a_k != 0.
        self._reference = WordLFSR(self._field, generator, seed)
        if all(s == 0 for s in seed):
            raise ValueError(
                "the all-zero seed is a fixed point of the automaton; "
                "it exercises nothing"
            )
        self._generator = generator
        self._seed = seed
        self._k = len(generator) - 1
        self._trajectory = trajectory
        # Data-background inversion (a standard BIST knob, here part of the
        # "specific TDB"): the *stored* values are the bitwise complement
        # of the automaton state, so across a normal + an inverted
        # iteration every cell is guaranteed to hold both polarities of
        # every bit -- which is what activates the full SAF/TF universe.
        self._invert = bool(invert)
        self._mask = (1 << self._field.m) - 1

    # -- configuration introspection -------------------------------------------

    @property
    def field(self) -> GF2m:
        """The coefficient field."""
        return self._field

    @property
    def generator(self) -> tuple[int, ...]:
        """Generator polynomial coefficients ``(a_0, ..., a_k)``."""
        return self._generator

    @property
    def seed(self) -> tuple[int, ...]:
        """The initial window."""
        return self._seed

    @property
    def k(self) -> int:
        """Automaton stages (degree of g)."""
        return self._k

    @property
    def invert(self) -> bool:
        """True when the stored background is the complemented stream."""
        return self._invert

    @property
    def recurrence_multipliers(self) -> tuple[int, ...]:
        """Per-window-slot multipliers ``a_0^{-1} a_{k-j}`` of the
        recurrence (zero entries are null taps the sweep skips).  The
        :mod:`repro.sim` compiler bakes these into ``"ra"`` records."""
        return self._reference.recurrence_multipliers

    def _encode(self, value: int) -> int:
        """Automaton value -> stored cell value."""
        return value ^ self._mask if self._invert else value

    def _decode(self, value: int) -> int:
        """Stored cell value -> automaton value."""
        return value ^ self._mask if self._invert else value

    @property
    def period(self) -> int:
        """Predicted period of the virtual LFSR."""
        return wpoly_x_pow_order(self._field, wpoly(self._generator))

    def trajectory_for(self, n: int) -> Trajectory:
        """The trajectory used on an n-cell memory."""
        if self._trajectory is not None:
            if self._trajectory.n != n:
                raise ValueError(
                    f"trajectory covers {self._trajectory.n} addresses, "
                    f"memory has {n}"
                )
            return self._trajectory
        return ascending(n)

    def ring_closes_for(self, n: int) -> bool:
        """True when a pass over n cells returns the automaton to Init
        (i.e. the period divides n) -- the paper's pseudo-ring condition."""
        return n % self.period == 0

    def expected_final(self, n: int) -> tuple[int, ...]:
        """``Fin*``: expected final window *as stored in memory* (the
        reference LFSR state after n steps, inversion-encoded)."""
        reference = self._reference.copy()
        reference.reset()
        reference.run(n)
        return tuple(self._encode(s) for s in reference.state)

    def expected_stream(self, n: int) -> list[int]:
        """The fault-free written stream as stored: the value of the j-th
        sweep write (``s_{k+j}``, inversion-encoded), matching
        ``PiIterationResult.written_stream`` index for index."""
        reference = self._reference.copy()
        reference.reset()
        reference.run(self._k)
        return [self._encode(s) for s in reference.sequence(n)]

    def background_after(self, n: int) -> list[int]:
        """Fault-free cell contents (indexed by *cell*) after one pass.

        Cell ``traj[p]`` holds stream value ``s_p`` for ``p = k .. n-1``;
        the first k trajectory cells were rewritten by the cyclic wrap and
        hold ``s_n .. s_{n+k-1}``.  A follow-up *verifying* iteration
        checks exactly these values before overwriting (see :meth:`run`).
        """
        traj = self.trajectory_for(n)
        reference = self._reference.copy()
        reference.reset()
        stream = [self._encode(s) for s in reference.sequence(n + self._k)]
        background = [0] * n
        for p in range(self._k, n):
            background[traj[p]] = stream[p]
        for i in range(self._k):
            background[traj[n + i]] = stream[n + i]
        return background

    @property
    def reads_per_subiteration(self) -> int:
        """Cells actually read per sub-iteration.

        Window slots whose recurrence multiplier is zero are *skipped* (they
        contribute nothing and the cells are exercised by neighbouring
        sub-iterations anyway), so a degree-3 generator with one zero
        coefficient -- e.g. ``g = 1 + x^2 + x^3`` -- keeps the paper's
        2-reads + 1-write sub-iteration and its O(3n) complexity while
        producing a much richer (period-7 m-sequence) data background.
        """
        return sum(1 for mult in self._reference.recurrence_multipliers if mult)

    def operation_count(self, n: int) -> int:
        """Exact operations per iteration:
        ``(reads_per_subiteration + 1) * n + 2k``.

        For the paper's k = 2 generator this is ``3n + 4``, i.e. O(3n)
        (claim C4); it stays 3n-shaped for any generator with exactly two
        non-zero feedback taps.
        """
        return (self.reads_per_subiteration + 1) * n + 2 * self._k

    def __repr__(self) -> str:
        return (
            f"PiIteration(GF(2^{self._field.m}), "
            f"g={wpoly_to_string(wpoly(self._generator))!r}, seed={self._seed})"
        )

    # -- execution ---------------------------------------------------------------

    def run(self, ram, record: bool = False,
            previous_background: list[int] | None = None) -> PiIterationResult:
        """Execute the iteration on a single-port RAM front-end.

        The RAM's cell width must equal the field degree.  ``record=True``
        additionally captures the written stream (used by the Figure 1
        benchmarks; costs memory, not extra RAM operations).

        ``previous_background`` (cell-indexed expected old contents, e.g.
        from the previous iteration's :meth:`background_after`) switches on
        *transparent verification*: every cell is read and checked against
        its expected old value just before being overwritten.  This is the
        March-style read-before-write the pure pseudo-ring lacks -- without
        it, a corruption that lands after a cell's last sweep read is
        silently overwritten by the next iteration.  Cost: one extra read
        per write (the iteration becomes ~4n instead of ~3n).
        """
        if ram.m != self._field.m:
            raise ValueError(
                f"RAM cell width m={ram.m} does not match field GF(2^{self._field.m})"
            )
        n = ram.n
        if n < self._k + 1:
            raise ValueError(
                f"memory must have more than k={self._k} cells, got {n}"
            )
        if previous_background is not None and len(previous_background) != n:
            raise ValueError(
                f"previous background must list all {n} cells, "
                f"got {len(previous_background)}"
            )
        traj = self.trajectory_for(n)
        field = self._field
        operations = 0
        verify_mismatches = 0

        def check_before_overwrite(cell: int, expected: int) -> None:
            nonlocal operations, verify_mismatches
            old = ram.read(cell)
            operations += 1
            if old != expected:
                verify_mismatches += 1

        # 1. Init: seed the first k trajectory cells.
        for i, value in enumerate(self._seed):
            if previous_background is not None:
                check_before_overwrite(traj[i], previous_background[traj[i]])
            ram.write(traj[i], self._encode(value))
            operations += 1
        written: list[int] | None = [] if record else None
        # Recurrence multipliers (a_0^{-1} a_{k-j} for window slot j).
        mult = self._reference.recurrence_multipliers
        # 2. Sweep with cyclic wrap: n sub-iterations.
        for j in range(n):
            acc = 0
            for i in range(self._k):
                if mult[i] == 0:
                    continue  # null tap: the read would contribute nothing
                r = self._decode(ram.read(traj[j + i]))
                operations += 1
                if r:
                    acc = field.add(acc, field.mul(mult[i], r))
            if previous_background is not None:
                if j < n - self._k:
                    cell = traj[j + self._k]
                    check_before_overwrite(cell, previous_background[cell])
                else:
                    # Wrap writes overwrite this iteration's own seeds --
                    # verify the seed survived the whole sweep instead.
                    check_before_overwrite(
                        traj[j + self._k],
                        self._encode(self._seed[j + self._k - n]),
                    )
            stored = self._encode(acc)
            ram.write(traj[j + self._k], stored)
            operations += 1
            if written is not None:
                written.append(stored)
        # 3. Signature: read the final window (wraps to the first k cells).
        final = []
        for i in range(self._k):
            final.append(ram.read(traj[n + i]))
            operations += 1
        return PiIterationResult(
            init_state=tuple(self._encode(s) for s in self._seed),
            final_state=tuple(final),
            expected_final=self.expected_final(n),
            operations=operations,
            written_stream=written,
            verify_mismatches=verify_mismatches,
        )
