"""Ring sizing: match generator polynomials to memory sizes.

The pseudo-ring property -- ``Fin == Init`` with no stored golden value --
requires the array length to be a multiple of the virtual LFSR's period
(paper §2: "If the memory array size is multiple by the period of LFSR
then virtual automaton will return to the initial state").  Real memories
have power-of-two sizes, so the BIST designer goes the other way: given
``n``, find a generator whose period divides it.  These helpers search the
(small) space of candidate generators.

When no ring-aligned generator exists (e.g. n = 2^k has only odd-period
LFSR divisors... in fact any n coprime to all achievable periods), the
signature comparator simply stores ``Fin*`` -- the π-test still works, it
just loses the Init-compare convenience; :func:`ring_alignment_report`
says which situation a given configuration is in.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.gf2m.field import GF2m
from repro.gf2m.poly_ext import wpoly, wpoly_is_irreducible, wpoly_x_pow_order

__all__ = [
    "iter_two_tap_generators",
    "ring_aligned_generators",
    "ring_alignment_report",
]


def iter_two_tap_generators(field: GF2m, k: int) -> Iterator[tuple[int, ...]]:
    """All degree-k irreducible generators with exactly two non-zero
    feedback taps (so sub-iterations keep the paper's 2-reads+1-write,
    O(3n) shape).

    A "two-tap" generator has non-zero ``a_0`` and ``a_k`` plus at most
    one more non-zero coefficient... precisely: the recurrence multipliers
    ``a_0^{-1} a_{k-j}`` for ``j = 0..k-1`` must have exactly two non-zero
    entries, i.e. exactly one interior coefficient is non-zero -- or none,
    when k = ... k >= 2 needs a_k plus one interior tap; the pure binomial
    ``a_0 + a_k x^k`` has a single tap and degenerates to a word copier,
    so it is excluded.

    >>> GF2 = GF2m(0b11)
    >>> list(iter_two_tap_generators(GF2, 2))
    [(1, 1, 1)]
    """
    if k < 2:
        raise ValueError("two-tap generators need degree k >= 2")
    size = field.size
    for a0 in range(1, size):
        for ak in range(1, size):
            for interior_pos in range(1, k):
                for interior in range(1, size):
                    coeffs = [a0] + [0] * (k - 1) + [ak]
                    coeffs[interior_pos] = interior
                    candidate = tuple(coeffs)
                    if wpoly_is_irreducible(field, wpoly(candidate)):
                        yield candidate


def ring_aligned_generators(field: GF2m, n: int, k: int,
                            limit: int = 10) -> list[tuple[tuple[int, ...], int]]:
    """Two-tap degree-k generators whose period divides ``n``.

    Returns up to ``limit`` pairs ``(generator, period)``, shortest period
    first (shorter periods divide more sizes but lay less diverse data).

    >>> GF2 = GF2m(0b11)
    >>> ring_aligned_generators(GF2, 21, 3)
    [((1, 0, 1, 1), 7), ((1, 1, 0, 1), 7)]
    """
    if n < 2:
        raise ValueError("memory size must be >= 2")
    found = []
    seen: set[tuple[int, ...]] = set()
    for candidate in iter_two_tap_generators(field, k):
        if candidate in seen:
            continue
        seen.add(candidate)
        period = wpoly_x_pow_order(field, wpoly(candidate))
        if n % period == 0:
            found.append((candidate, period))
    found.sort(key=lambda item: (item[1], item[0]))
    return found[:limit]


def ring_alignment_report(field: GF2m, generator: tuple[int, ...],
                          n: int) -> dict[str, object]:
    """How a (generator, memory size) pair stands w.r.t. the ring property.

    >>> GF2 = GF2m(0b11)
    >>> report = ring_alignment_report(GF2, (1, 1, 1), 9)
    >>> report["ring_closes"], report["period"]
    (True, 3)
    """
    period = wpoly_x_pow_order(field, wpoly(generator))
    closes = n % period == 0
    report: dict[str, object] = {
        "period": period,
        "n": n,
        "ring_closes": closes,
    }
    if not closes:
        # The nearest aligned sizes, for designers who can pad/partition.
        report["previous_aligned_n"] = (n // period) * period
        report["next_aligned_n"] = ((n // period) + 1) * period
    return report
