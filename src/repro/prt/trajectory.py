"""Trajectories: the address order a π-test walks.

The paper names the LFSR trajectory as quality factor 3 (claim C1): the
virtual automaton can sweep the array in increasing or decreasing address
order, or along a (hardware-programmable, hence seeded and reproducible)
random permutation.  A trajectory visits every address exactly once; the
π-test indexes it cyclically, so ``traj[j + k]`` wraps around -- that wrap
is what closes the pseudo-ring.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

__all__ = ["Trajectory", "ascending", "descending", "random_trajectory"]


class Trajectory:
    """A permutation of the ``n`` addresses, indexed cyclically.

    >>> traj = ascending(4)
    >>> traj[3], traj[4], traj[5]
    (3, 0, 1)
    >>> descending(4).addresses
    (3, 2, 1, 0)
    """

    def __init__(self, addresses: Sequence[int], name: str = "custom"):
        addresses = tuple(addresses)
        if not addresses:
            raise ValueError("a trajectory needs at least one address")
        if sorted(addresses) != list(range(len(addresses))):
            raise ValueError(
                "a trajectory must be a permutation of range(n); "
                f"got {addresses[:8]}..."
            )
        self._addresses = addresses
        self._name = name

    @property
    def n(self) -> int:
        """Number of addresses."""
        return len(self._addresses)

    @property
    def name(self) -> str:
        """Human-readable trajectory kind."""
        return self._name

    @property
    def addresses(self) -> tuple[int, ...]:
        """The full visiting order."""
        return self._addresses

    def __len__(self) -> int:
        return len(self._addresses)

    def __getitem__(self, index: int) -> int:
        """Cyclic indexing: ``traj[j]`` for any non-negative j."""
        return self._addresses[index % len(self._addresses)]

    def __iter__(self):
        return iter(self._addresses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return self._addresses == other._addresses

    def __hash__(self) -> int:
        return hash(self._addresses)

    def reversed(self) -> Trajectory:
        """The same addresses walked backwards."""
        return Trajectory(tuple(reversed(self._addresses)),
                          name=f"reversed({self._name})")

    def rotated(self, offset: int) -> Trajectory:
        """Start the walk ``offset`` positions later (same cyclic order).

        >>> ascending(4).rotated(1).addresses
        (1, 2, 3, 0)
        """
        offset %= len(self._addresses)
        rotated = self._addresses[offset:] + self._addresses[:offset]
        return Trajectory(rotated, name=f"{self._name}+{offset}")

    def __repr__(self) -> str:
        return f"Trajectory({self._name}, n={self.n})"


def ascending(n: int) -> Trajectory:
    """Increasing address order (the paper's deterministic ⇑ mode)."""
    return Trajectory(range(n), name="ascending")


def descending(n: int) -> Trajectory:
    """Decreasing address order (the paper's deterministic ⇓ mode)."""
    return Trajectory(range(n - 1, -1, -1), name="descending")


def random_trajectory(n: int, seed: int = 0) -> Trajectory:
    """Seeded random permutation (the paper's "random trajectory",
    programmable externally -- the seed is the programming).

    >>> random_trajectory(8, seed=1) == random_trajectory(8, seed=1)
    True
    """
    rng = random.Random(seed)
    addresses = list(range(n))
    rng.shuffle(addresses)
    return Trajectory(addresses, name=f"random(seed={seed})")
