"""Bridging faults (BF).

A bridging fault resistively shorts two cells.  After any write that
touches either cell, both take the bit-wise wired-AND (or wired-OR) of the
two contents -- the standard model for a low-resistance short between the
storage nodes.  For word-oriented memories the short is bit-wise across the
full word.
"""

from __future__ import annotations

from repro.faults.base import Fault, VectorSemantics
from repro.memory.array import MemoryArray

__all__ = ["BridgingFault"]


class BridgingFault(Fault):
    """Cells ``cell_a`` and ``cell_b`` are shorted.

    Parameters
    ----------
    kind:
        ``"and"`` -- both cells settle to ``a & b`` (typical NMOS short),
        ``"or"`` -- both settle to ``a | b`` (typical PMOS short).

    >>> BridgingFault(2, 5).name
    'BF-and(2, 5)'
    """

    fault_class = "BF"

    def __init__(self, cell_a: int, cell_b: int, kind: str = "and"):
        if cell_a == cell_b:
            raise ValueError("a bridge needs two distinct cells")
        if cell_a < 0 or cell_b < 0:
            raise ValueError("cells must be non-negative")
        if kind not in ("and", "or"):
            raise ValueError(f"bridge kind must be 'and' or 'or', got {kind!r}")
        self._a, self._b = sorted((cell_a, cell_b))
        self._kind = kind

    @property
    def name(self) -> str:
        return f"BF-{self._kind}({self._a}, {self._b})"

    def __repr__(self) -> str:
        return self.name

    def cells(self) -> tuple[int, ...]:
        return (self._a, self._b)

    @property
    def kind(self) -> str:
        """``"and"`` or ``"or"``."""
        return self._kind

    def _short(self, array: MemoryArray) -> None:
        va = array.read(self._a)
        vb = array.read(self._b)
        merged = (va & vb) if self._kind == "and" else (va | vb)
        if va != merged:
            array.write(self._a, merged)
        if vb != merged:
            array.write(self._b, merged)

    def after_write(self, array: MemoryArray, cell: int, old: int,
                    committed: int, time: int) -> None:
        if cell in (self._a, self._b):
            self._short(array)

    def settle(self, array: MemoryArray, time: int) -> None:
        self._short(array)

    def vector_semantics(self) -> VectorSemantics:
        """Lane description for the bit-packed engine: kind ``"bridge"``,
        the shorted pair in ``(cell, victim_cell)`` and the wired rule in
        ``value`` (1 = wired-OR, 0 = wired-AND)."""
        return VectorSemantics(
            "bridge", cell=self._a, victim_cell=self._b,
            value=1 if self._kind == "or" else 0,
        )
