"""Coupling faults between two bits (CFin, CFid, CFst).

Coupling faults involve an *aggressor* bit and a *victim* bit (different
cells for the classical inter-cell faults; the same cell's bits for the
paper's intra-word case, claim C7):

* **CFin** (inversion): a rising or falling transition of the aggressor
  *inverts* the victim;
* **CFid** (idempotent): a rising or falling transition of the aggressor
  *forces* the victim to a fixed value;
* **CFst** (state): while the aggressor *holds* a given state, the victim
  is forced to a fixed value.

CFin/CFid fire on committed write transitions of the aggressor (the
:meth:`after_write` hook); CFst is a steady-state condition enforced after
every cycle (the :meth:`settle` hook).
"""

from __future__ import annotations

from repro.faults.base import BitLocation, Fault, VectorSemantics
from repro.memory.array import MemoryArray

__all__ = ["InversionCouplingFault", "IdempotentCouplingFault", "StateCouplingFault"]


def _as_location(loc: BitLocation | int) -> BitLocation:
    if isinstance(loc, BitLocation):
        return loc
    return BitLocation(loc, 0)


class _TwoCellFault(Fault):
    """Shared plumbing for aggressor/victim faults."""

    def __init__(self, aggressor: BitLocation | int, victim: BitLocation | int):
        self._aggressor = _as_location(aggressor)
        self._victim = _as_location(victim)
        if self._aggressor == self._victim:
            raise ValueError("aggressor and victim must be distinct bits")

    @property
    def aggressor(self) -> BitLocation:
        """The coupling source bit."""
        return self._aggressor

    @property
    def victim(self) -> BitLocation:
        """The coupled (corrupted) bit."""
        return self._victim

    def cells(self) -> tuple[int, ...]:
        if self._aggressor.cell == self._victim.cell:
            return (self._aggressor.cell,)
        return (self._aggressor.cell, self._victim.cell)

    @property
    def is_intra_word(self) -> bool:
        """True when aggressor and victim are bits of the same word
        (the paper's intra-word fault class, claim C7)."""
        return self._aggressor.cell == self._victim.cell

    def _aggressor_transition(self, cell: int, old: int,
                              committed: int) -> tuple[int, int] | None:
        """(old_bit, new_bit) of the aggressor if this write moved it."""
        if cell != self._aggressor.cell:
            return None
        bit = self._aggressor.bit
        old_bit = (old >> bit) & 1
        new_bit = (committed >> bit) & 1
        if old_bit == new_bit:
            return None
        return old_bit, new_bit


class InversionCouplingFault(_TwoCellFault):
    """CFin: an aggressor transition inverts the victim bit.

    ``rising=True`` couples the 0->1 aggressor transition, ``rising=False``
    the 1->0 transition.

    >>> InversionCouplingFault(1, 3, rising=True).name
    'CFin-up(aggr=(1,0), victim=(3,0))'
    """

    fault_class = "CFin"

    def __init__(self, aggressor: BitLocation | int, victim: BitLocation | int,
                 rising: bool):
        super().__init__(aggressor, victim)
        self._rising = bool(rising)

    @property
    def name(self) -> str:
        direction = "up" if self._rising else "down"
        a, v = self._aggressor, self._victim
        return f"CFin-{direction}(aggr=({a.cell},{a.bit}), victim=({v.cell},{v.bit}))"

    def __repr__(self) -> str:
        return self.name

    def after_write(self, array: MemoryArray, cell: int, old: int,
                    committed: int, time: int) -> None:
        transition = self._aggressor_transition(cell, old, committed)
        if transition is None:
            return
        _old_bit, new_bit = transition
        if new_bit == (1 if self._rising else 0):
            current = self._victim.read(array)
            self._victim.write(array, current ^ 1)

    def vector_semantics(self) -> VectorSemantics:
        return VectorSemantics(
            "coupling", cell=self._aggressor.cell, bit=self._aggressor.bit,
            rising=self._rising, value=None,
            victim_cell=self._victim.cell, victim_bit=self._victim.bit,
        )


class IdempotentCouplingFault(_TwoCellFault):
    """CFid: an aggressor transition forces the victim bit to ``force_to``.

    >>> IdempotentCouplingFault(0, 2, rising=False, force_to=1).name
    'CFid-down->1(aggr=(0,0), victim=(2,0))'
    """

    fault_class = "CFid"

    def __init__(self, aggressor: BitLocation | int, victim: BitLocation | int,
                 rising: bool, force_to: int):
        super().__init__(aggressor, victim)
        if force_to not in (0, 1):
            raise ValueError(f"forced value must be 0 or 1, got {force_to!r}")
        self._rising = bool(rising)
        self._force_to = force_to

    @property
    def name(self) -> str:
        direction = "up" if self._rising else "down"
        a, v = self._aggressor, self._victim
        return (
            f"CFid-{direction}->{self._force_to}"
            f"(aggr=({a.cell},{a.bit}), victim=({v.cell},{v.bit}))"
        )

    def __repr__(self) -> str:
        return self.name

    def after_write(self, array: MemoryArray, cell: int, old: int,
                    committed: int, time: int) -> None:
        transition = self._aggressor_transition(cell, old, committed)
        if transition is None:
            return
        _old_bit, new_bit = transition
        if new_bit == (1 if self._rising else 0):
            self._victim.write(array, self._force_to)

    def vector_semantics(self) -> VectorSemantics:
        return VectorSemantics(
            "coupling", cell=self._aggressor.cell, bit=self._aggressor.bit,
            rising=self._rising, value=self._force_to,
            victim_cell=self._victim.cell, victim_bit=self._victim.bit,
        )


class StateCouplingFault(_TwoCellFault):
    """CFst: while the aggressor bit holds ``aggressor_state``, the victim
    bit is forced to ``force_to``.

    >>> StateCouplingFault(1, 2, aggressor_state=1, force_to=0).name
    'CFst<1->0>(aggr=(1,0), victim=(2,0))'
    """

    fault_class = "CFst"

    def __init__(self, aggressor: BitLocation | int, victim: BitLocation | int,
                 aggressor_state: int, force_to: int):
        super().__init__(aggressor, victim)
        if aggressor_state not in (0, 1):
            raise ValueError(
                f"aggressor state must be 0 or 1, got {aggressor_state!r}"
            )
        if force_to not in (0, 1):
            raise ValueError(f"forced value must be 0 or 1, got {force_to!r}")
        self._aggressor_state = aggressor_state
        self._force_to = force_to

    @property
    def name(self) -> str:
        a, v = self._aggressor, self._victim
        return (
            f"CFst<{self._aggressor_state}->{self._force_to}>"
            f"(aggr=({a.cell},{a.bit}), victim=({v.cell},{v.bit}))"
        )

    def __repr__(self) -> str:
        return self.name

    def _enforce(self, array: MemoryArray) -> None:
        if self._aggressor.read(array) == self._aggressor_state:
            self._victim.write(array, self._force_to)

    def settle(self, array: MemoryArray, time: int) -> None:
        self._enforce(array)

    def after_write(self, array: MemoryArray, cell: int, old: int,
                    committed: int, time: int) -> None:
        # Enforce immediately as well, so a same-cycle read-after-write
        # inside one port cycle already sees the forced value.
        if cell in (self._aggressor.cell, self._victim.cell):
            self._enforce(array)

    def vector_semantics(self) -> VectorSemantics:
        """Lane description for the bit-packed engine: kind ``"state"``,
        with ``rising`` carrying the aggressor state (True = holds 1)
        and ``value`` the forced victim value.  The lane model
        (:class:`repro.sim.batched._StateCouplingLanes`) re-enforces the
        condition through the executor's ``settle``/``after_write``
        hooks, mirroring the scalar hooks above."""
        return VectorSemantics(
            "state", cell=self._aggressor.cell, bit=self._aggressor.bit,
            rising=bool(self._aggressor_state), value=self._force_to,
            victim_cell=self._victim.cell, victim_bit=self._victim.bit,
        )
