"""Fault interface.

Every fault model implements a handful of hooks that the
:class:`~repro.faults.injector.FaultInjector` calls at the right points of a
memory cycle:

* :meth:`Fault.read_value` -- perturb the value sensed from a cell,
* :meth:`Fault.transform_write` -- perturb (or block) the value a write
  stores into a cell,
* :meth:`Fault.after_write` -- react to a *committed* transition of a cell
  (coupling faults fire here),
* :meth:`Fault.settle` -- enforce steady-state conditions after each cycle
  (state coupling, bridges, pattern-sensitive faults),
* :meth:`Fault.decoder_overrides` -- contribute faulty address mappings.

Faults carrying internal analogue state (stuck-open latches, retention
timers) implement :meth:`Fault.reset` so one fault object can be reused
across many test runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.array import MemoryArray

__all__ = ["Fault", "BitLocation", "VectorSemantics"]


@dataclass(frozen=True)
class VectorSemantics:
    """Lane-parallel description of a fault, for the bit-packed engine.

    A fault whose effect can be expressed as a few mask operations on a
    bit-plane memory (:class:`repro.memory.packed.PackedMemoryArray`)
    returns one of these from :meth:`Fault.vector_semantics`; the batched
    campaign engine (:func:`repro.sim.batched.run_campaign_batched`) then
    replays one compiled stream against hundreds of such faults at once,
    one lane per fault.  Faults whose behaviour no lane model can express
    (custom analogue models, front-end-dependent semantics) return
    ``None`` and take the per-fault path.

    ``kind`` selects which other slots are meaningful:

    ================  =======================================================
    kind              semantics
    ================  =======================================================
    ``"stuck"``       bit ``(cell, bit)`` pinned to ``value``
    ``"transition"``  bit ``(cell, bit)`` cannot rise (``rising=True``) or
                      fall (``rising=False``) on a write
    ``"coupling"``    a write moving aggressor bit ``(cell, bit)`` to 1
                      (``rising=True``) or 0 (``rising=False``) corrupts
                      victim bit ``(victim_cell, victim_bit)``: inverted
                      when ``value`` is None (CFin), forced to ``value``
                      otherwise (CFid)
    ``"state"``       while aggressor bit ``(cell, bit)`` holds 1
                      (``rising=True``) or 0 (``rising=False``), victim
                      bit ``(victim_cell, victim_bit)`` is forced to
                      ``value`` (CFst)
    ``"npsf"``        while every neighbour cell holds its pattern value
                      (``extra`` = ``(neighbour_cell, m_bit_value)``
                      pairs), victim cell ``cell`` is forced to ``value``
    ``"bridge"``      cells ``cell`` and ``victim_cell`` are shorted;
                      ``value`` is 1 for a wired-OR short, 0 for
                      wired-AND
    ``"retention"``   cell ``cell`` decays to ``value`` after
                      ``extra[0]`` idle cycles without an access
    ``"linked"``      composite: ``extra`` holds the component
                      descriptors (all ``"coupling"``), fired in order on
                      every aggressor edge
    ``"decoder"``     address-decoder rewiring; ``extra`` holds the
                      sorted ``(address, activated_cells)`` override
                      pairs
    ================  =======================================================

    >>> VectorSemantics("stuck", cell=3, value=1)
    VectorSemantics(kind='stuck', cell=3, bit=0, value=1, rising=None, victim_cell=None, victim_bit=None, extra=())
    """

    kind: str
    cell: int
    bit: int = 0
    value: int | None = None
    rising: bool | None = None
    victim_cell: int | None = None
    victim_bit: int | None = None
    extra: tuple = ()


@dataclass(frozen=True, order=True)
class BitLocation:
    """A single bit of a single cell: the unit coupling faults act on.

    For a bit-oriented memory every location has ``bit == 0``.

    >>> BitLocation(3, 1)
    BitLocation(cell=3, bit=1)
    """

    cell: int
    bit: int = 0

    def read(self, array: MemoryArray) -> int:
        """Current value of this bit in the array."""
        return array.read_bit(self.cell, self.bit)

    def write(self, array: MemoryArray, value: int) -> None:
        """Force this bit in the array."""
        array.write_bit(self.cell, self.bit, value)


class Fault:
    """Base class for all fault models.  Subclasses override what they need.

    The default implementation is a no-op fault (healthy behaviour).
    """

    #: short class tag, e.g. "SAF", "CFin"; overridden by subclasses.
    fault_class: str = "NONE"

    @property
    def name(self) -> str:
        """Human-readable identity used in coverage reports."""
        return repr(self)

    def cells(self) -> tuple[int, ...]:
        """Physical cells this fault involves (for reporting)."""
        return ()

    # -- hooks -----------------------------------------------------------------

    def read_value(self, array: MemoryArray, cell: int, stored: int,
                   time: int) -> int:
        """Value sensed when reading ``cell`` whose array content is
        ``stored``.  Default: faithful."""
        return stored

    def transform_write(self, array: MemoryArray, cell: int, old: int,
                        new: int, time: int) -> int:
        """Value actually stored when writing ``new`` over ``old``.
        Default: faithful."""
        return new

    def after_write(self, array: MemoryArray, cell: int, old: int,
                    committed: int, time: int) -> None:
        """React to the committed write ``old -> committed`` on ``cell``
        (coupling faults mutate their victims here).  Default: nothing."""

    def settle(self, array: MemoryArray, time: int) -> None:
        """Enforce steady-state conditions after a cycle.  Default: nothing."""

    def decoder_overrides(self) -> dict[int, tuple[int, ...]]:
        """Address-decoder rewiring contributed by this fault.
        Default: none."""
        return {}

    def vector_semantics(self) -> VectorSemantics | None:
        """Lane-parallel (mask-operation) description of this fault, or
        None when the fault cannot be vectorized (custom analogue state,
        front-end-dependent behaviour).  Default: None."""

    def reset(self) -> None:
        """Clear internal analogue state (latches, timers).  Default: none."""
