"""Transition faults (TF).

A transition fault prevents one bit of one cell from making one of its two
transitions: a TF-up cell cannot go 0 -> 1, a TF-down cell cannot go 1 -> 0.
The other transition, and reads, work normally -- so detecting a TF requires
writing the bit *into* the blocked transition and reading afterwards, which
is why March tests always pair ``w`` with a subsequent ``r``.
"""

from __future__ import annotations

from repro.faults.base import Fault, VectorSemantics
from repro.memory.array import MemoryArray

__all__ = ["TransitionFault"]


class TransitionFault(Fault):
    """Bit ``bit`` of cell ``cell`` fails its rising or falling transition.

    Parameters
    ----------
    cell, bit:
        Location of the faulty bit.
    rising:
        True: the 0->1 transition fails (bit stays 0).
        False: the 1->0 transition fails (bit stays 1).

    >>> TransitionFault(2, rising=True).name
    'TF-up(cell=2, bit=0)'
    """

    fault_class = "TF"

    def __init__(self, cell: int, rising: bool, bit: int = 0):
        if cell < 0:
            raise ValueError(f"cell must be non-negative, got {cell}")
        if bit < 0:
            raise ValueError(f"bit must be non-negative, got {bit}")
        self._cell = cell
        self._bit = bit
        self._rising = bool(rising)

    @property
    def name(self) -> str:
        direction = "up" if self._rising else "down"
        return f"TF-{direction}(cell={self._cell}, bit={self._bit})"

    def __repr__(self) -> str:
        return self.name

    def cells(self) -> tuple[int, ...]:
        return (self._cell,)

    @property
    def rising(self) -> bool:
        """True when the rising (0->1) transition is the one that fails."""
        return self._rising

    def vector_semantics(self) -> VectorSemantics:
        return VectorSemantics("transition", cell=self._cell, bit=self._bit,
                               rising=self._rising)

    def transform_write(self, array: MemoryArray, cell: int, old: int,
                        new: int, time: int) -> int:
        if cell != self._cell:
            return new
        mask = 1 << self._bit
        old_bit = (old >> self._bit) & 1
        new_bit = (new >> self._bit) & 1
        if self._rising and old_bit == 0 and new_bit == 1:
            return new & ~mask  # rise blocked: stays 0
        if not self._rising and old_bit == 1 and new_bit == 0:
            return new | mask  # fall blocked: stays 1
        return new
