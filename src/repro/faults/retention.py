"""Data-retention faults (DRF).

A data-retention fault makes a cell leak: after going unaccessed for longer
than its retention interval, its content decays to a preferred value.
Detecting a DRF requires a *pause* between writing and reading -- which is
why industrial March tests insert delay elements, and why fast back-to-back
tests miss these faults.  Time is measured in memory cycles (the RAM's cycle
counter is passed into every behaviour hook).
"""

from __future__ import annotations

from repro.faults.base import Fault, VectorSemantics
from repro.memory.array import MemoryArray

__all__ = ["DataRetentionFault"]


class DataRetentionFault(Fault):
    """Cell ``cell`` decays to ``decay_to`` after ``retention`` idle cycles.

    "Idle" counts cycles since the last write *or* read of the cell (an
    access refreshes the cell, as in DRAM or a weak SRAM cell being
    rewritten by its sense amplifier).

    >>> DataRetentionFault(2, retention=100).name
    'DRF(cell=2, retention=100)'
    """

    fault_class = "DRF"

    def __init__(self, cell: int, retention: int, decay_to: int = 0):
        if cell < 0:
            raise ValueError(f"cell must be non-negative, got {cell}")
        if retention < 1:
            raise ValueError(f"retention must be >= 1 cycle, got {retention}")
        if decay_to < 0:
            raise ValueError("decay value must be non-negative")
        self._cell = cell
        self._retention = retention
        self._decay_to = decay_to
        self._last_access: int | None = None

    @property
    def name(self) -> str:
        return f"DRF(cell={self._cell}, retention={self._retention})"

    def __repr__(self) -> str:
        return self.name

    def cells(self) -> tuple[int, ...]:
        return (self._cell,)

    @property
    def retention(self) -> int:
        """Idle cycles the cell survives without decaying."""
        return self._retention

    def reset(self) -> None:
        self._last_access = None

    def _decayed(self, time: int) -> bool:
        return (
            self._last_access is not None
            and time - self._last_access > self._retention
        )

    def read_value(self, array: MemoryArray, cell: int, stored: int,
                   time: int) -> int:
        if cell != self._cell:
            return stored
        if self._decayed(time):
            # The decayed value is now the real cell content.
            array.write(cell, self._decay_to)
            stored = self._decay_to
        self._last_access = time
        return stored

    def transform_write(self, array: MemoryArray, cell: int, old: int,
                        new: int, time: int) -> int:
        if cell == self._cell:
            self._last_access = time
        return new

    def vector_semantics(self) -> VectorSemantics:
        """Lane description for the bit-packed engine: kind
        ``"retention"``, with ``value`` the decay value and ``extra[0]``
        the retention interval.  The lane model replays the stream's
        cycle clock (operations and ``"i"`` idles alike), so decay
        timing is exact per lane."""
        return VectorSemantics(
            "retention", cell=self._cell, value=self._decay_to,
            extra=(self._retention,),
        )
