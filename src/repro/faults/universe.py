"""Fault-universe generators for coverage campaigns.

A *fault universe* is the set of fault instances a coverage experiment
injects one at a time (single-fault assumption, as in the paper and in
van de Goor's coverage tables).  The generators below enumerate the
canonical universes for a memory of ``n`` cells by ``m`` bits:

* :func:`single_cell_universe` -- SAF/TF per bit, SOF/DRF per cell;
* :func:`coupling_universe` -- CFin/CFid/CFst over ordered cell pairs
  (all adjacent pairs plus a seeded random sample of distant pairs, so the
  universe stays linear in n);
* :func:`decoder_universe` -- the four AF types over a sample of addresses;
* :func:`intra_word_universe` -- intra-word coupling for WOMs (claim C7);
* :func:`bridging_universe` -- wired-AND/OR bridges between adjacent cells;
* :func:`standard_universe` -- the union used by the headline experiments
  (E3, E9).

Every generator is deterministic (seeded sampling), which is what makes
process sharding cheap: a universe built here carries a
:class:`UniverseSpec` -- a tiny picklable *recipe* naming the generator
and its arguments -- and :func:`materialize_spec` re-enumerates the
identical fault list anywhere (in particular inside the worker processes
of :mod:`repro.sim.pool`), so shards travel as ``(spec, index range)``
instead of pickled fault objects.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass
from functools import lru_cache

from repro.faults.base import BitLocation, Fault
from repro.faults.bridging import BridgingFault
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.decoder_faults import (
    af_multi_access,
    af_no_access,
    af_shared_cell,
    af_unreached_cell,
)
from repro.faults.npsf import StaticNPSF
from repro.faults.retention import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.stuck_open import StuckOpenFault
from repro.faults.transition import TransitionFault

__all__ = [
    "FaultUniverse",
    "UniverseSpec",
    "materialize_spec",
    "single_cell_universe",
    "coupling_universe",
    "decoder_universe",
    "intra_word_universe",
    "bridging_universe",
    "npsf_universe",
    "standard_universe",
]


@dataclass(frozen=True)
class UniverseSpec:
    """A picklable recipe that re-enumerates a fault universe anywhere.

    ``generator`` names a registered universe generator (or one of the
    combinators ``"union"`` / ``"sample"``), ``kwargs`` holds its
    arguments as a sorted tuple of pairs (hashable, so specs key caches),
    and ``parts`` holds the child specs of a combinator.  Because every
    generator is seeded-deterministic, ``spec.build()`` produces the
    *identical* fault sequence in any process -- the contract the
    process-sharded campaign engines rely on when they ship a
    ``(spec, index range)`` shard instead of pickled fault objects.

    >>> spec = single_cell_universe(8, classes=("SAF",)).spec
    >>> spec.generator, dict(spec.kwargs)["n"]
    ('single_cell', 8)
    >>> [f.name for f in spec.build()] == [
    ...     f.name for f in single_cell_universe(8, classes=("SAF",))]
    True
    """

    generator: str
    kwargs: tuple[tuple[str, object], ...] = ()
    parts: tuple["UniverseSpec", ...] = ()

    @classmethod
    def call(cls, generator: str, **kwargs) -> "UniverseSpec":
        """Spec for one generator call; kwargs are sorted for stable hashing."""
        return cls(generator, kwargs=tuple(sorted(kwargs.items())))

    def build(self) -> "FaultUniverse":
        """Enumerate the universe this spec describes."""
        if self.generator == "union":
            faults: list[Fault] = []
            for part in self.parts:
                faults.extend(part.build())
            return FaultUniverse(faults, spec=self)
        if self.generator == "sample":
            return self.parts[0].build().sample(**dict(self.kwargs))
        try:
            generate = _SPEC_GENERATORS[self.generator]
        except KeyError:
            raise ValueError(
                f"unknown universe generator {self.generator!r} "
                f"(known: {sorted(_SPEC_GENERATORS)})"
            ) from None
        return generate(**dict(self.kwargs))

    def __repr__(self) -> str:
        pieces = [f"{k}={v!r}" for k, v in self.kwargs]
        if self.parts:
            pieces.append("[" + ", ".join(repr(p) for p in self.parts) + "]")
        return f"UniverseSpec({self.generator!r}, {', '.join(pieces)})"


@lru_cache(maxsize=8)
def materialize_spec(spec: UniverseSpec) -> tuple[Fault, ...]:
    """Enumerate a spec's faults, cached per process.

    This is the worker-side entry point of spec-based sharding: each pool
    worker materializes a campaign's universe once and serves every shard
    of it from the cache, so the faults never travel over the task pipe.
    """
    return tuple(spec.build())


def _union_spec(left: UniverseSpec | None,
                right: UniverseSpec | None) -> UniverseSpec | None:
    """Spec of a concatenation -- None when either side is untracked."""
    if left is None or right is None:
        return None
    parts = (left.parts if left.generator == "union" else (left,)) + \
        (right.parts if right.generator == "union" else (right,))
    return UniverseSpec("union", parts=parts)


class FaultUniverse:
    """An ordered collection of faults with per-class queries.

    ``spec``, when not None, is the :class:`UniverseSpec` that rebuilds
    this exact universe in another process; universes assembled from
    generator outputs (including via ``+`` and seeded :meth:`sample`)
    keep their specs automatically.

    >>> universe = single_cell_universe(4, classes=("SAF",))
    >>> len(universe)
    8
    >>> sorted(universe.counts())
    ['SAF']
    """

    def __init__(self, faults: list[Fault], spec: UniverseSpec | None = None):
        self._faults = list(faults)
        self.spec = spec

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self._faults)

    def __getitem__(self, index: int) -> Fault:
        return self._faults[index]

    def by_class(self, fault_class: str) -> list[Fault]:
        """All faults of one class tag (e.g. ``"SAF"``)."""
        return [f for f in self._faults if f.fault_class == fault_class]

    def classes(self) -> list[str]:
        """Distinct class tags, sorted."""
        return sorted({f.fault_class for f in self._faults})

    def counts(self) -> dict[str, int]:
        """``{class_tag: number_of_faults}``."""
        out: dict[str, int] = {}
        for fault in self._faults:
            out[fault.fault_class] = out.get(fault.fault_class, 0) + 1
        return out

    def sample(self, k: int, rng: random.Random | None = None) -> FaultUniverse:
        """A reproducible random subset of ``k`` faults.

        With the default ``rng`` (seed 0) the subset is a pure function
        of the universe, so a spec-carrying universe keeps a spec; a
        caller-supplied ``rng`` has unknown state and drops it.
        """
        spec = None
        if rng is None:
            rng = random.Random(0)
            if self.spec is not None:
                spec = UniverseSpec("sample", kwargs=(("k", k),),
                                    parts=(self.spec,))
        if k >= len(self._faults):
            return FaultUniverse(self._faults, spec=spec)
        return FaultUniverse(rng.sample(self._faults, k), spec=spec)

    def __add__(self, other: FaultUniverse) -> FaultUniverse:
        return FaultUniverse(self._faults + other._faults,
                             spec=_union_spec(self.spec, other.spec))

    def __repr__(self) -> str:
        inner = ", ".join(f"{c}:{k}" for c, k in sorted(self.counts().items()))
        return f"FaultUniverse({len(self._faults)} faults; {inner})"


def _normalize_classes(classes) -> tuple[str, ...]:
    """Class filters as a hashable tuple (the shape ``UniverseSpec`` keys).

    A bare string would silently pass every membership test as a
    substring probe and, tuple()'d, yield an empty universe -- wrap it
    into the intended one-element filter instead.
    """
    if isinstance(classes, str):
        return (classes,)
    return tuple(classes)


def single_cell_universe(
    n: int, m: int = 1,
    classes: tuple[str, ...] = ("SAF", "TF", "SOF", "DRF"),
    retention: int = 64,
) -> FaultUniverse:
    """All single-cell faults of the requested classes.

    SAF and TF enumerate every bit of every cell (2 polarities each);
    SOF and DRF are one per cell.

    >>> len(single_cell_universe(8, m=1))   # 16 SAF + 16 TF + 8 SOF + 8 DRF
    48
    """
    classes = _normalize_classes(classes)
    faults: list[Fault] = []
    for cell in range(n):
        for bit in range(m):
            if "SAF" in classes:
                faults.append(StuckAtFault(cell, 0, bit=bit))
                faults.append(StuckAtFault(cell, 1, bit=bit))
            if "TF" in classes:
                faults.append(TransitionFault(cell, rising=True, bit=bit))
                faults.append(TransitionFault(cell, rising=False, bit=bit))
        if "SOF" in classes:
            faults.append(StuckOpenFault(cell))
        if "DRF" in classes:
            faults.append(DataRetentionFault(cell, retention=retention))
    return FaultUniverse(faults, spec=UniverseSpec.call(
        "single_cell", n=n, m=m, classes=classes, retention=retention))


def _cell_pairs(n: int, extra_random: int, rng: random.Random) -> list[tuple[int, int]]:
    """Ordered aggressor/victim cell pairs: all adjacent + random sample."""
    pairs = []
    for i in range(n - 1):
        pairs.append((i, i + 1))
        pairs.append((i + 1, i))
    seen = set(pairs)
    attempts = 0
    while len(pairs) - 2 * (n - 1) < extra_random and attempts < 50 * extra_random:
        attempts += 1
        a = rng.randrange(n)
        v = rng.randrange(n)
        if a == v or (a, v) in seen:
            continue
        seen.add((a, v))
        pairs.append((a, v))
    return pairs


def coupling_universe(
    n: int, m: int = 1,
    classes: tuple[str, ...] = ("CFin", "CFid", "CFst"),
    extra_random_pairs: int = 0,
    seed: int = 0,
) -> FaultUniverse:
    """Two-cell coupling faults over adjacent (plus sampled) cell pairs.

    For ``m > 1`` the coupled bits are chosen pseudo-randomly per pair so
    word-oriented campaigns exercise all bit positions without exploding
    the universe size.
    """
    if n < 2:
        raise ValueError("coupling faults need at least two cells")
    classes = _normalize_classes(classes)
    rng = random.Random(seed)
    faults: list[Fault] = []
    for a_cell, v_cell in _cell_pairs(n, extra_random_pairs, rng):
        a_bit = rng.randrange(m) if m > 1 else 0
        v_bit = rng.randrange(m) if m > 1 else 0
        aggressor = BitLocation(a_cell, a_bit)
        victim = BitLocation(v_cell, v_bit)
        if "CFin" in classes:
            faults.append(InversionCouplingFault(aggressor, victim, rising=True))
            faults.append(InversionCouplingFault(aggressor, victim, rising=False))
        if "CFid" in classes:
            for rising in (True, False):
                for force_to in (0, 1):
                    faults.append(
                        IdempotentCouplingFault(aggressor, victim, rising, force_to)
                    )
        if "CFst" in classes:
            for state in (0, 1):
                for force_to in (0, 1):
                    faults.append(
                        StateCouplingFault(aggressor, victim, state, force_to)
                    )
    return FaultUniverse(faults, spec=UniverseSpec.call(
        "coupling", n=n, m=m, classes=classes,
        extra_random_pairs=extra_random_pairs, seed=seed))


def decoder_universe(n: int, max_addresses: int = 8, seed: int = 0) -> FaultUniverse:
    """The four AF types over a sample of addresses.

    >>> universe = decoder_universe(16, max_addresses=4)
    >>> universe.counts()
    {'AF': 16}
    """
    if n < 2:
        raise ValueError("decoder faults need at least two addresses")
    rng = random.Random(seed)
    addresses = list(range(n))
    if n > max_addresses:
        addresses = sorted(rng.sample(addresses, max_addresses))
    faults: list[Fault] = []
    for addr in addresses:
        other = (addr + 1) % n
        faults.append(af_no_access(addr))
        faults.append(af_unreached_cell(addr, other))
        faults.append(af_multi_access(addr, (other,)))
        faults.append(af_shared_cell(addr, other))
    return FaultUniverse(faults, spec=UniverseSpec.call(
        "decoder", n=n, max_addresses=max_addresses, seed=seed))


def intra_word_universe(
    n: int, m: int,
    classes: tuple[str, ...] = ("CFin", "CFid", "CFst"),
    max_cells: int = 8, seed: int = 0,
) -> FaultUniverse:
    """Intra-word coupling faults: aggressor/victim bits of the same word.

    This is the fault class the paper's claim C7 addresses with parallel /
    random bit-slice trajectories.  Adjacent bit pairs of each sampled cell
    are enumerated in both directions.
    """
    if m < 2:
        raise ValueError("intra-word faults need word width m >= 2")
    classes = _normalize_classes(classes)
    rng = random.Random(seed)
    cells = list(range(n))
    if n > max_cells:
        cells = sorted(rng.sample(cells, max_cells))
    faults: list[Fault] = []
    for cell in cells:
        bit_pairs = [(b, b + 1) for b in range(m - 1)]
        bit_pairs += [(b + 1, b) for b in range(m - 1)]
        for a_bit, v_bit in bit_pairs:
            aggressor = BitLocation(cell, a_bit)
            victim = BitLocation(cell, v_bit)
            if "CFin" in classes:
                faults.append(InversionCouplingFault(aggressor, victim, rising=True))
                faults.append(
                    InversionCouplingFault(aggressor, victim, rising=False)
                )
            if "CFid" in classes:
                for rising in (True, False):
                    for force_to in (0, 1):
                        faults.append(
                            IdempotentCouplingFault(
                                aggressor, victim, rising, force_to
                            )
                        )
            if "CFst" in classes:
                for state in (0, 1):
                    for force_to in (0, 1):
                        faults.append(
                            StateCouplingFault(aggressor, victim, state, force_to)
                        )
    return FaultUniverse(faults, spec=UniverseSpec.call(
        "intra_word", n=n, m=m, classes=classes, max_cells=max_cells,
        seed=seed))


def bridging_universe(n: int) -> FaultUniverse:
    """Wired-AND and wired-OR bridges between all adjacent cell pairs."""
    if n < 2:
        raise ValueError("bridging faults need at least two cells")
    faults: list[Fault] = []
    for i in range(n - 1):
        faults.append(BridgingFault(i, i + 1, kind="and"))
        faults.append(BridgingFault(i, i + 1, kind="or"))
    return FaultUniverse(faults, spec=UniverseSpec.call("bridging", n=n))


def npsf_universe(n: int, max_victims: int = 8, seed: int = 0) -> FaultUniverse:
    """Static NPSFs over linear (address-adjacent) neighbourhoods.

    For each sampled victim cell ``v`` with interior neighbours
    ``(v-1, v+1)``, enumerate all four neighbourhood patterns forcing the
    victim to the value that contradicts the pattern-implied deceptive
    state (both force polarities).

    >>> npsf_universe(8, max_victims=2).counts()
    {'NPSF': 16}
    """
    if n < 3:
        raise ValueError("NPSF needs at least three cells")
    rng = random.Random(seed)
    victims = list(range(1, n - 1))
    if len(victims) > max_victims:
        victims = sorted(rng.sample(victims, max_victims))
    faults: list[Fault] = []
    for victim in victims:
        neighbors = (victim - 1, victim + 1)
        for p0 in (0, 1):
            for p1 in (0, 1):
                for force_to in (0, 1):
                    faults.append(
                        StaticNPSF(victim=victim, neighbors=neighbors,
                                   pattern=(p0, p1), force_to=force_to)
                    )
    return FaultUniverse(faults, spec=UniverseSpec.call(
        "npsf", n=n, max_victims=max_victims, seed=seed))


def standard_universe(n: int, m: int = 1, seed: int = 0) -> FaultUniverse:
    """The union universe used by the headline experiments (E3, E9).

    Single-cell SAF/TF (every bit), SOF, coupling faults over adjacent
    pairs, bridges, and the four decoder-fault types.  DRF is excluded by
    default because detecting it requires explicit pause elements
    (both March and PRT need the same added delay; see E3's notes).
    """
    universe = single_cell_universe(n, m, classes=("SAF", "TF", "SOF"))
    universe += coupling_universe(n, m, seed=seed)
    universe += bridging_universe(n)
    universe += decoder_universe(n, seed=seed)
    if m > 1:
        universe += intra_word_universe(n, m, seed=seed)
    return universe


# Spec-resolvable generators (see UniverseSpec).  standard_universe is
# omitted on purpose: it already decomposes into a union spec of these.
_SPEC_GENERATORS = {
    "single_cell": single_cell_universe,
    "coupling": coupling_universe,
    "decoder": decoder_universe,
    "intra_word": intra_word_universe,
    "bridging": bridging_universe,
    "npsf": npsf_universe,
}
