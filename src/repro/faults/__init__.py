"""Memory fault models (van de Goor's classical taxonomy).

The paper evaluates pseudo-ring testing against the standard functional
fault models for RAM [van de Goor, *Testing Semiconductor Memories*, 1998]:

==========  =============================================================
class       behaviour
==========  =============================================================
``SAF``     stuck-at: a cell (or bit) permanently holds 0 or 1
``TF``      transition: a cell cannot make a 0->1 (TF-up) or 1->0
            (TF-down) transition
``SOF``     stuck-open: the cell is disconnected; reads return the sense
            amplifier's previous value, writes are lost
``DRF``     data retention: the cell decays after going unaccessed for a
            retention interval
``CFin``    inversion coupling: a transition in the aggressor inverts the
            victim
``CFid``    idempotent coupling: a transition in the aggressor forces the
            victim to a fixed value
``CFst``    state coupling: while the aggressor holds a given state, the
            victim is forced to a fixed value
``BF``      bridging: two cells are resistively shorted (wired-AND /
            wired-OR)
``AF``      address-decoder faults, four types: an address reaching no
            cell, a cell reached by no address, an address reaching
            several cells, a cell reached by several addresses
``NPSF``    (static) neighbourhood pattern sensitive: the victim is
            forced while its neighbourhood holds a specific pattern
``IWCF``    intra-word coupling (WOM only): aggressor and victim are bits
            of the *same* word -- the paper's claim C7 targets
==========  =============================================================

All faults are *active behavioural wrappers*: they intercept reads/writes
through :class:`repro.faults.injector.FaultInjector` (a
:class:`~repro.memory.behavior.CellBehavior`), so they interact with test
sequences exactly as silicon defects would -- coupling faults fire on actual
transitions, decoder faults rewire the address map, and so on.
"""

from repro.faults.base import Fault, BitLocation, VectorSemantics
from repro.faults.injector import FaultInjector
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.faults.stuck_open import StuckOpenFault
from repro.faults.retention import DataRetentionFault
from repro.faults.coupling import (
    InversionCouplingFault,
    IdempotentCouplingFault,
    StateCouplingFault,
)
from repro.faults.bridging import BridgingFault
from repro.faults.decoder_faults import (
    AddressDecoderFault,
    af_no_access,
    af_unreached_cell,
    af_multi_access,
    af_shared_cell,
)
from repro.faults.npsf import StaticNPSF
from repro.faults.linked import (
    LinkedFault,
    linked_cfin_pair,
    linked_cfid_pair,
    linked_universe,
)
from repro.faults.universe import (
    FaultUniverse,
    UniverseSpec,
    materialize_spec,
    single_cell_universe,
    coupling_universe,
    decoder_universe,
    intra_word_universe,
    bridging_universe,
    npsf_universe,
    standard_universe,
)

__all__ = [
    "Fault",
    "BitLocation",
    "VectorSemantics",
    "FaultInjector",
    "StuckAtFault",
    "TransitionFault",
    "StuckOpenFault",
    "DataRetentionFault",
    "InversionCouplingFault",
    "IdempotentCouplingFault",
    "StateCouplingFault",
    "BridgingFault",
    "AddressDecoderFault",
    "af_no_access",
    "af_unreached_cell",
    "af_multi_access",
    "af_shared_cell",
    "StaticNPSF",
    "LinkedFault",
    "linked_cfin_pair",
    "linked_cfid_pair",
    "linked_universe",
    "FaultUniverse",
    "UniverseSpec",
    "materialize_spec",
    "single_cell_universe",
    "coupling_universe",
    "decoder_universe",
    "intra_word_universe",
    "bridging_universe",
    "npsf_universe",
    "standard_universe",
]
