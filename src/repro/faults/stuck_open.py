"""Stuck-open faults (SOF).

A stuck-open cell is disconnected from its bit line (e.g. a broken pass
transistor).  Writes never reach the cell, and a read does not discharge the
bit line, so the sense amplifier reports whatever it latched on the
*previous* read -- the classical SOF model from van de Goor.  Detecting an
SOF therefore requires two consecutive reads expecting *different* values,
which ordinary single-read March elements can miss.
"""

from __future__ import annotations

from repro.faults.base import Fault, VectorSemantics
from repro.memory.array import MemoryArray

__all__ = ["StuckOpenFault"]


class StuckOpenFault(Fault):
    """Cell ``cell`` is disconnected: writes lost, reads return the sense
    amplifier's previous value.

    The pre-fault cell content is irrelevant (the cell floats); the sense
    latch powers up at ``initial_sense`` (default 0).

    >>> StuckOpenFault(4).name
    'SOF(cell=4)'
    """

    fault_class = "SOF"

    def __init__(self, cell: int, initial_sense: int = 0):
        if cell < 0:
            raise ValueError(f"cell must be non-negative, got {cell}")
        if initial_sense < 0:
            raise ValueError("initial sense value must be non-negative")
        self._cell = cell
        self._initial_sense = initial_sense
        self._sense = initial_sense

    @property
    def name(self) -> str:
        return f"SOF(cell={self._cell})"

    def __repr__(self) -> str:
        return self.name

    def cells(self) -> tuple[int, ...]:
        return (self._cell,)

    def reset(self) -> None:
        self._sense = self._initial_sense

    def read_value(self, array: MemoryArray, cell: int, stored: int,
                   time: int) -> int:
        if cell != self._cell:
            # A healthy read refreshes the shared sense amplifier.
            self._sense = stored
            return stored
        # Open cell: bit line keeps the latched value.
        return self._sense

    def transform_write(self, array: MemoryArray, cell: int, old: int,
                        new: int, time: int) -> int:
        if cell != self._cell:
            return new
        return old  # write never reaches the cell

    def vector_semantics(self) -> VectorSemantics | None:
        """Lane description for the bit-packed engine: kind
        ``"stuck-open"``, with ``value`` carrying the latch's power-up
        bit.  The latch state itself lives in the lane model
        (:class:`repro.sim.batched._StuckOpenLanes`, one sense latch per
        lane), so the fault stays exact lane-parallel.  Multi-bit
        power-up values (``initial_sense > 1``) have no single-descriptor
        encoding and stay on the per-fault path."""
        if self._initial_sense not in (0, 1):
            return None
        return VectorSemantics("stuck-open", cell=self._cell,
                               value=self._initial_sense)
