"""Stuck-at faults (SAF).

A stuck-at fault pins one bit of one cell to a constant.  For a bit-oriented
memory the bit is the whole cell; for a word-oriented memory any single bit
of the word can be stuck while the others work (which is what makes WOM
backgrounds matter -- a test that only ever writes 0x0/0xF cannot tell which
bit is stuck).
"""

from __future__ import annotations

from repro.faults.base import Fault, VectorSemantics
from repro.memory.array import MemoryArray

__all__ = ["StuckAtFault"]


class StuckAtFault(Fault):
    """Bit ``bit`` of cell ``cell`` permanently reads and stores ``value``.

    >>> fault = StuckAtFault(3, 1)          # SA1 on the whole bit cell 3
    >>> fault.fault_class
    'SAF'
    >>> StuckAtFault(5, 0, bit=2).name
    'SA0(cell=5, bit=2)'
    """

    fault_class = "SAF"

    def __init__(self, cell: int, value: int, bit: int = 0):
        if value not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {value!r}")
        if cell < 0:
            raise ValueError(f"cell must be non-negative, got {cell}")
        if bit < 0:
            raise ValueError(f"bit must be non-negative, got {bit}")
        self._cell = cell
        self._bit = bit
        self._value = value

    @property
    def name(self) -> str:
        return f"SA{self._value}(cell={self._cell}, bit={self._bit})"

    def __repr__(self) -> str:
        return self.name

    def cells(self) -> tuple[int, ...]:
        return (self._cell,)

    @property
    def stuck_value(self) -> int:
        """The pinned bit value."""
        return self._value

    def _force(self, word: int) -> int:
        if self._value:
            return word | (1 << self._bit)
        return word & ~(1 << self._bit)

    def read_value(self, array: MemoryArray, cell: int, stored: int,
                   time: int) -> int:
        if cell != self._cell:
            return stored
        return self._force(stored)

    def transform_write(self, array: MemoryArray, cell: int, old: int,
                        new: int, time: int) -> int:
        if cell != self._cell:
            return new
        return self._force(new)

    def vector_semantics(self) -> VectorSemantics:
        return VectorSemantics("stuck", cell=self._cell, bit=self._bit,
                               value=self._value)

    def settle(self, array: MemoryArray, time: int) -> None:
        # The physical cell node is pinned, so the stored value is forced
        # too (a coupling fault writing the victim cannot unpin it).
        if self._cell < array.n and self._bit < array.m:
            stored = array.read(self._cell)
            forced = self._force(stored)
            if forced != stored:
                array.write(self._cell, forced)
