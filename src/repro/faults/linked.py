"""Linked faults: multiple coupling faults sharing a victim.

Two coupling faults are *linked* when they target the same victim bit and
their effects can mask each other -- e.g. two inversion couplings whose
aggressors both transition between the victim's write and its read flip
the victim twice, leaving it correct at observation time.  Van de Goor
distinguishes tests by whether they detect linked faults: March C- covers
all *unlinked* two-cell coupling faults but misses certain linked pairs;
March A/B add the write-heavy elements precisely for them.

Mechanically a linked fault is just several fault objects installed
together (the injector composes them in order), so this module provides
the canonical linked *pairs* and a universe generator; detection campaigns
treat the pair as one composite fault.
"""

from __future__ import annotations

import random

from repro.faults.base import BitLocation, Fault, VectorSemantics
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
)
from repro.faults.universe import FaultUniverse
from repro.memory.array import MemoryArray

__all__ = ["LinkedFault", "linked_cfin_pair", "linked_cfid_pair", "linked_universe"]


class LinkedFault(Fault):
    """A composite of component faults acting together on shared cells.

    The components fire in order on every hook, exactly as if they were
    separately installed in one injector -- the wrapper exists so coverage
    campaigns can treat the linked pair as a single unit with one name.

    >>> fault = linked_cfin_pair(1, 5, 3)
    >>> fault.fault_class
    'LF'
    >>> sorted(fault.cells())
    [1, 3, 5]
    """

    fault_class = "LF"

    def __init__(self, components: list[Fault], subtype: str = "LF"):
        if len(components) < 2:
            raise ValueError("a linked fault needs at least two components")
        self._components = list(components)
        self._subtype = subtype

    @property
    def components(self) -> tuple[Fault, ...]:
        """The component faults, in firing order."""
        return tuple(self._components)

    @property
    def name(self) -> str:
        inner = " & ".join(c.name for c in self._components)
        return f"{self._subtype}[{inner}]"

    def __repr__(self) -> str:
        return self.name

    def cells(self) -> tuple[int, ...]:
        touched: set[int] = set()
        for component in self._components:
            touched.update(component.cells())
        return tuple(sorted(touched))

    def read_value(self, array: MemoryArray, cell: int, stored: int,
                   time: int) -> int:
        for component in self._components:
            stored = component.read_value(array, cell, stored, time)
        return stored

    def transform_write(self, array: MemoryArray, cell: int, old: int,
                        new: int, time: int) -> int:
        for component in self._components:
            new = component.transform_write(array, cell, old, new, time)
        return new

    def after_write(self, array: MemoryArray, cell: int, old: int,
                    committed: int, time: int) -> None:
        for component in self._components:
            component.after_write(array, cell, old, committed, time)

    def settle(self, array: MemoryArray, time: int) -> None:
        for component in self._components:
            component.settle(array, time)

    def decoder_overrides(self) -> dict[int, tuple[int, ...]]:
        overrides: dict[int, tuple[int, ...]] = {}
        for component in self._components:
            overrides.update(component.decoder_overrides())
        return overrides

    def reset(self) -> None:
        for component in self._components:
            component.reset()

    def vector_semantics(self) -> VectorSemantics | None:
        """Lane description for the bit-packed engine: kind ``"linked"``,
        composing the component descriptors in ``extra`` (firing order
        preserved).  Only pure edge-coupling compositions vectorize --
        any component that is not a ``"coupling"`` descriptor makes the
        composite take the per-fault path, because other hook kinds do
        not commute through a shared fired-mask."""
        parts = []
        for component in self._components:
            semantics = component.vector_semantics()
            if semantics is None or semantics.kind != "coupling":
                return None
            parts.append(semantics)
        lead = parts[0]
        return VectorSemantics("linked", cell=lead.cell, bit=lead.bit,
                               extra=tuple(parts))


def linked_cfin_pair(aggressor1: int, aggressor2: int, victim: int,
                     rising1: bool = True, rising2: bool = True) -> LinkedFault:
    """Two inversion couplings sharing a victim: the masking pair.

    When both aggressors fire between the victim's write and read, the two
    inversions cancel -- the classical linked CFin that defeats March C-.

    >>> linked_cfin_pair(0, 4, 2).name
    'LF-CFin[CFin-up(aggr=(0,0), victim=(2,0)) & CFin-up(aggr=(4,0), victim=(2,0))]'
    """
    if len({aggressor1, aggressor2, victim}) != 3:
        raise ValueError("linked pair needs three distinct cells")
    return LinkedFault(
        [
            InversionCouplingFault(BitLocation(aggressor1), BitLocation(victim),
                                   rising=rising1),
            InversionCouplingFault(BitLocation(aggressor2), BitLocation(victim),
                                   rising=rising2),
        ],
        subtype="LF-CFin",
    )


def linked_cfid_pair(aggressor1: int, aggressor2: int, victim: int,
                     rising1: bool = True, rising2: bool = True) -> LinkedFault:
    """Two idempotent couplings with opposite forced values on one victim.

    The second aggressor's force can restore the value the first one
    destroyed, hiding both.

    >>> fault = linked_cfid_pair(0, 4, 2)
    >>> len(fault.components)
    2
    """
    if len({aggressor1, aggressor2, victim}) != 3:
        raise ValueError("linked pair needs three distinct cells")
    return LinkedFault(
        [
            IdempotentCouplingFault(BitLocation(aggressor1), BitLocation(victim),
                                    rising=rising1, force_to=1),
            IdempotentCouplingFault(BitLocation(aggressor2), BitLocation(victim),
                                    rising=rising2, force_to=0),
        ],
        subtype="LF-CFid",
    )


def linked_universe(n: int, max_victims: int = 8, seed: int = 0) -> FaultUniverse:
    """Linked CFin and CFid pairs over victims with two flanking
    aggressors (the layout where masking actually happens).

    >>> linked_universe(8, max_victims=2).counts()
    {'LF': 16}
    """
    if n < 3:
        raise ValueError("linked faults need at least three cells")
    rng = random.Random(seed)
    victims = list(range(1, n - 1))
    if len(victims) > max_victims:
        victims = sorted(rng.sample(victims, max_victims))
    faults: list[Fault] = []
    for victim in victims:
        a1, a2 = victim - 1, victim + 1
        for rising1 in (True, False):
            for rising2 in (True, False):
                faults.append(linked_cfin_pair(a1, a2, victim, rising1, rising2))
                faults.append(linked_cfid_pair(a1, a2, victim, rising1, rising2))
    return FaultUniverse(faults)
