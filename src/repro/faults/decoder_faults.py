"""Address-decoder faults (AF).

Van de Goor's four decoder fault types are expressed as faulty
address-to-cell mappings installed into the RAM's
:class:`~repro.memory.decoder.AddressDecoder`:

* **AF-A** (:func:`af_no_access`): address ``a`` activates no cell.
  Writes are lost; reads return the sense amplifier's stale value.
* **AF-B** (:func:`af_unreached_cell`): cell ``c`` is activated by no
  address (its address is redirected elsewhere).
* **AF-C** (:func:`af_multi_access`): address ``a`` activates its own cell
  *plus* others; reads combine wired-AND/OR, writes hit all of them.
* **AF-D** (:func:`af_shared_cell`): two addresses activate the same cell.

In real decoders these come in complementary pairs (an address losing its
cell usually means some cell losing its address); the factories build the
individual primitive, and :func:`repro.faults.universe.decoder_universe`
composes realistic pairs.
"""

from __future__ import annotations

from repro.faults.base import Fault, VectorSemantics

__all__ = [
    "AddressDecoderFault",
    "af_no_access",
    "af_unreached_cell",
    "af_multi_access",
    "af_shared_cell",
]


class AddressDecoderFault(Fault):
    """A decoder fault: a bundle of address-mapping overrides.

    Use the ``af_*`` factory functions for the four canonical types.

    >>> af = AddressDecoderFault("AF-A", {3: ()})
    >>> af.decoder_overrides()
    {3: ()}
    """

    fault_class = "AF"

    def __init__(self, subtype: str, overrides: dict[int, tuple[int, ...]]):
        if not overrides:
            raise ValueError("a decoder fault needs at least one override")
        self._subtype = subtype
        self._overrides = {
            addr: tuple(cells) for addr, cells in overrides.items()
        }

    @property
    def name(self) -> str:
        parts = ", ".join(
            f"{addr}->{list(cells)}" for addr, cells in sorted(self._overrides.items())
        )
        return f"{self._subtype}({parts})"

    def __repr__(self) -> str:
        return self.name

    @property
    def subtype(self) -> str:
        """One of ``"AF-A"``, ``"AF-B"``, ``"AF-C"``, ``"AF-D"``."""
        return self._subtype

    def cells(self) -> tuple[int, ...]:
        touched: set[int] = set(self._overrides)
        for cells in self._overrides.values():
            touched.update(cells)
        return tuple(sorted(touched))

    def decoder_overrides(self) -> dict[int, tuple[int, ...]]:
        return dict(self._overrides)

    def vector_semantics(self) -> VectorSemantics:
        """Lane description for the bit-packed engine: kind
        ``"decoder"``, with ``extra`` the sorted ``(address,
        activated_cells)`` override pairs.  The lane model reproduces
        the canonical single-port read path -- lost writes, redirected
        writes, wired-AND multi-cell reads and the AF-A sense-amplifier
        latch -- column-parallel."""
        overrides = tuple(sorted(self._overrides.items()))
        return VectorSemantics("decoder", cell=overrides[0][0],
                               extra=overrides)


def af_no_access(addr: int) -> AddressDecoderFault:
    """AF-A: ``addr`` activates no cell.

    >>> af_no_access(3).decoder_overrides()
    {3: ()}
    """
    return AddressDecoderFault("AF-A", {addr: ()})


def af_unreached_cell(cell: int, redirected_to: int) -> AddressDecoderFault:
    """AF-B: cell ``cell`` is never activated -- its own address is
    redirected to ``redirected_to``.

    >>> af_unreached_cell(2, 5).decoder_overrides()
    {2: (5,)}
    """
    if cell == redirected_to:
        raise ValueError("redirect target must differ from the orphaned cell")
    return AddressDecoderFault("AF-B", {cell: (redirected_to,)})


def af_multi_access(addr: int, extra_cells: tuple[int, ...] | list[int]) -> AddressDecoderFault:
    """AF-C: ``addr`` activates its own cell plus ``extra_cells``.

    >>> af_multi_access(1, (4,)).decoder_overrides()
    {1: (1, 4)}
    """
    extra = tuple(extra_cells)
    if not extra:
        raise ValueError("AF-C needs at least one extra cell")
    if addr in extra:
        raise ValueError("extra cells must differ from the address's own cell")
    return AddressDecoderFault("AF-C", {addr: (addr,) + extra})


def af_shared_cell(addr: int, other_addr: int) -> AddressDecoderFault:
    """AF-D: ``other_addr`` activates ``addr``'s cell instead of its own.

    >>> af_shared_cell(0, 1).decoder_overrides()
    {1: (0,)}
    """
    if addr == other_addr:
        raise ValueError("the two addresses must be distinct")
    return AddressDecoderFault("AF-D", {other_addr: (addr,)})
