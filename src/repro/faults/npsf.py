"""Neighbourhood pattern-sensitive faults (static NPSF).

A static NPSF forces a victim cell to a fixed value whenever its
neighbourhood holds a specific pattern.  In a physical layout the
neighbourhood is the 4 (type-1) or 8 (type-2) adjacent cells; in this
behavioural model any tuple of cells can form the neighbourhood, which also
covers the linear (address-ordered) neighbourhoods the pseudo-ring walk
sweeps through.
"""

from __future__ import annotations

from repro.faults.base import Fault, VectorSemantics
from repro.memory.array import MemoryArray

__all__ = ["StaticNPSF"]


class StaticNPSF(Fault):
    """Victim forced to ``force_to`` while ``neighbors`` hold ``pattern``.

    >>> fault = StaticNPSF(victim=2, neighbors=(1, 3), pattern=(1, 1),
    ...                    force_to=0)
    >>> fault.name
    'NPSF(victim=2, nbhd=(1, 3)=(1, 1) -> 0)'
    """

    fault_class = "NPSF"

    def __init__(self, victim: int, neighbors: tuple[int, ...] | list[int],
                 pattern: tuple[int, ...] | list[int], force_to: int):
        neighbors = tuple(neighbors)
        pattern = tuple(pattern)
        if not neighbors:
            raise ValueError("NPSF needs a non-empty neighbourhood")
        if len(neighbors) != len(pattern):
            raise ValueError(
                f"pattern length {len(pattern)} does not match "
                f"{len(neighbors)} neighbours"
            )
        if victim in neighbors:
            raise ValueError("the victim cannot be its own neighbour")
        if len(set(neighbors)) != len(neighbors):
            raise ValueError("duplicate neighbour cells")
        if force_to < 0:
            raise ValueError("forced value must be non-negative")
        for p in pattern:
            if p < 0:
                raise ValueError("pattern values must be non-negative")
        self._victim = victim
        self._neighbors = neighbors
        self._pattern = pattern
        self._force_to = force_to

    @property
    def name(self) -> str:
        return (
            f"NPSF(victim={self._victim}, "
            f"nbhd={self._neighbors}={self._pattern} -> {self._force_to})"
        )

    def __repr__(self) -> str:
        return self.name

    def cells(self) -> tuple[int, ...]:
        return (self._victim,) + self._neighbors

    def _active(self, array: MemoryArray) -> bool:
        return all(
            array.read(cell) == value
            for cell, value in zip(self._neighbors, self._pattern,
                                   strict=True)
        )

    def _enforce(self, array: MemoryArray) -> None:
        if self._active(array) and array.read(self._victim) != self._force_to:
            array.write(self._victim, self._force_to)

    def settle(self, array: MemoryArray, time: int) -> None:
        self._enforce(array)

    def after_write(self, array: MemoryArray, cell: int, old: int,
                    committed: int, time: int) -> None:
        if cell == self._victim or cell in self._neighbors:
            self._enforce(array)

    def vector_semantics(self) -> VectorSemantics:
        """Lane description for the bit-packed engine: kind ``"npsf"``,
        with ``value`` the forced victim value and ``extra`` the
        ``(neighbour_cell, pattern_value)`` pairs -- full m-bit cell
        values, exactly what :meth:`_active` compares."""
        return VectorSemantics(
            "npsf", cell=self._victim, value=self._force_to,
            extra=tuple(zip(self._neighbors, self._pattern, strict=True)),
        )
