"""The fault injector: faulty cell semantics behind the CellBehavior plug.

A :class:`FaultInjector` owns a set of :class:`~repro.faults.base.Fault`
objects and implements :class:`~repro.memory.behavior.CellBehavior`, so it
can be attached to any RAM front-end (single- or multi-port).  Decoder
faults additionally rewire the RAM's :class:`~repro.memory.decoder
.AddressDecoder`; :meth:`FaultInjector.install` / :meth:`FaultInjector
.remove` handle both pieces.

Hook order within one write::

    value -> [transform_write of every fault on the cell] -> committed
    committed stored in the array
    [after_write of every fault]    (coupling faults fire on the transition)
    [settle of every fault]         (state conditions re-enforced)
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.faults.base import Fault
from repro.memory.array import MemoryArray
from repro.memory.behavior import CellBehavior

__all__ = ["FaultInjector"]


class FaultInjector(CellBehavior):
    """Cell semantics with a set of active faults.

    Examples
    --------
    >>> from repro.memory import SinglePortRAM
    >>> from repro.faults import StuckAtFault
    >>> ram = SinglePortRAM(8)
    >>> injector = FaultInjector([StuckAtFault(3, 0)])
    >>> injector.install(ram)
    >>> ram.write(3, 1)
    >>> ram.read(3)
    0
    """

    def __init__(self, faults: Iterable[Fault] = ()):
        self._faults: list[Fault] = list(faults)
        self._installed_overrides: list[int] = []
        self._refresh_settle_faults()

    def _refresh_settle_faults(self) -> None:
        # settle() runs after *every* memory cycle; most fault models keep
        # the base-class no-op, so hot campaign loops only visit the
        # faults that actually override it.
        self._settle_faults = [
            fault for fault in self._faults
            if type(fault).settle is not Fault.settle
        ]

    @property
    def faults(self) -> tuple[Fault, ...]:
        """The active faults."""
        return tuple(self._faults)

    def add(self, fault: Fault) -> None:
        """Add one more fault (before installing)."""
        self._faults.append(fault)
        self._refresh_settle_faults()

    def __len__(self) -> int:
        return len(self._faults)

    def __repr__(self) -> str:
        classes = sorted({f.fault_class for f in self._faults})
        return f"FaultInjector({len(self._faults)} faults: {', '.join(classes)})"

    # -- lifecycle ---------------------------------------------------------------

    def install(self, ram) -> None:
        """Attach to a RAM front-end: behaviour plug + decoder overrides."""
        for fault in self._faults:
            fault.reset()
            for addr, cells in fault.decoder_overrides().items():
                ram.decoder.set_override(addr, cells)
                self._installed_overrides.append(addr)
        ram.attach_behavior(self)

    def remove(self, ram) -> None:
        """Detach from a RAM front-end, restoring healthy behaviour."""
        for addr in self._installed_overrides:
            ram.decoder.clear_override(addr)
        self._installed_overrides.clear()
        ram.detach_behavior()

    def reset(self) -> None:
        """Reset internal state of every fault (for test-campaign reuse)."""
        for fault in self._faults:
            fault.reset()

    # -- CellBehavior ------------------------------------------------------------

    def read_cell(self, array: MemoryArray, cell: int, time: int) -> int:
        value = array.read(cell)
        for fault in self._faults:
            value = fault.read_value(array, cell, value, time)
        return value

    def write_cell(self, array: MemoryArray, cell: int, value: int,
                   time: int) -> None:
        old = array.read(cell)
        committed = value
        for fault in self._faults:
            committed = fault.transform_write(array, cell, old, committed, time)
        array.write(cell, committed)
        for fault in self._faults:
            fault.after_write(array, cell, old, committed, time)

    def settle(self, array: MemoryArray, time: int) -> None:
        for fault in self._settle_faults:
            fault.settle(array, time)
