"""repro -- a reproduction of "New Schemes for Self-Testing RAM"
(Gh. Bodean, D. Bodean, A. Labunetz, DATE 2005).

Pseudo-ring testing (PRT) turns the memory array itself into a linear
automaton over a Galois field: each π-test sub-iteration reads neighbouring
cells and writes their GF(2^m)-linear combination onward, so the array
fills with an LFSR stream whose final state is predictable a priori.

Top-level quickstart::

    from repro import GF2m, PiIteration, SinglePortRAM, poly_from_string

    ram = SinglePortRAM(255, m=4)
    pi = PiIteration(field=GF2m(poly_from_string("1+z+z^4")),
                     generator=(1, 2, 2), seed=(0, 1))
    result = pi.run(ram)
    assert result.passed and result.ring_closed

Subpackages
-----------
``repro.gf2``      polynomials over GF(2)
``repro.gf2m``     extension fields, constant multipliers, XOR synthesis
``repro.lfsr``     bit- and word-oriented reference LFSRs
``repro.memory``   behavioural RAM (single/dual/quad port, decoder, trace)
``repro.faults``   van de Goor fault models + injection
``repro.march``    March notation, engine, standard test library
``repro.prt``      the paper's contribution: π-tests, schedules, ports
``repro.analysis`` coverage campaigns, Markov model, complexity tables
``repro.sim``      compile-once stimulus IR + batched fault-campaign engine

The ``repro.sim`` kernel is what the execution layers route through: a
test is lowered once to a flat :class:`~repro.sim.ir.OpStream`
(:func:`~repro.sim.compilers.compile_march` /
:func:`~repro.sim.compilers.compile_schedule`) and replayed against whole
fault universes by :func:`~repro.sim.campaign.run_campaign` -- with a
cached fault-free reference pass, early abort on first detection and an
opt-in multiprocessing fan-out::

    from repro import compile_march, run_campaign, standard_universe
    from repro.march.library import MARCH_C_MINUS

    stream = compile_march(MARCH_C_MINUS, 256)
    result = run_campaign(stream, standard_universe(256))
    print(result.detection_ratio)
"""

from repro.gf2 import poly_from_string, poly_to_string, primitive_polynomial
from repro.gf2m import GF2m, FieldElement
from repro.lfsr import BitLFSR, WordLFSR
from repro.memory import (
    SinglePortRAM,
    DualPortRAM,
    QuadPortRAM,
    MemoryArray,
    AddressDecoder,
)
from repro.faults import FaultInjector, standard_universe
from repro.march import parse_march, run_march, ALL_MARCH_TESTS
from repro.prt import (
    PiIteration,
    PiTestSchedule,
    standard_schedule,
    extended_schedule,
    DualPortPiIteration,
    QuadPortPiIteration,
    BitSlicePiIteration,
    BistOverheadModel,
    ascending,
    descending,
    random_trajectory,
)
from repro.sim import (
    OpStream,
    compile_march,
    compile_schedule,
    compile_pi_iteration,
    CampaignResult,
    run_campaign,
    run_campaign_batched,
)

__version__ = "0.1.0"

__all__ = [
    "poly_from_string",
    "poly_to_string",
    "primitive_polynomial",
    "GF2m",
    "FieldElement",
    "BitLFSR",
    "WordLFSR",
    "SinglePortRAM",
    "DualPortRAM",
    "QuadPortRAM",
    "MemoryArray",
    "AddressDecoder",
    "FaultInjector",
    "standard_universe",
    "parse_march",
    "run_march",
    "ALL_MARCH_TESTS",
    "PiIteration",
    "PiTestSchedule",
    "standard_schedule",
    "extended_schedule",
    "DualPortPiIteration",
    "QuadPortPiIteration",
    "BitSlicePiIteration",
    "BistOverheadModel",
    "ascending",
    "descending",
    "random_trajectory",
    "OpStream",
    "compile_march",
    "compile_schedule",
    "compile_pi_iteration",
    "CampaignResult",
    "run_campaign",
    "run_campaign_batched",
    "__version__",
]
