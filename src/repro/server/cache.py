"""Content-addressed campaign result cache: LRU memory + optional disk.

A coverage campaign is a pure function of its
:class:`~repro.analysis.request.CampaignRequest`: the stream digest
(:meth:`~repro.sim.ir.OpStream.digest`), the
:class:`~repro.faults.universe.UniverseSpec`, the engine/backend and the
geometry fully determine the :class:`CoverageReport` -- the request's
``cache_key()`` is a SHA-256 content address over exactly those parts.
:class:`ResultCache` exploits that:

* **in-process LRU** -- the hot tier; bounded entry count, most recently
  used kept.  Values are stored *pickled* and every hit unpickles a
  fresh copy, so a caller mutating its report can never poison the
  cache (and a hit is byte-for-byte identical to a cold run).
* **optional on-disk tier** -- ``disk_dir`` persists every entry as
  ``<key>.pickle``.  Because keys are content addresses stable across
  processes and Python runs, a cache directory written by one server
  process serves the next one (or a fleet sharing a volume).
* **single-flight compute** -- :meth:`get_or_compute` takes a per-key
  lock, so concurrent identical requests (the job executor, overlapping
  HTTP requests) run the campaign once and share the result.

>>> cache = ResultCache(maxsize=2)
>>> cache.put("ab12", {"coverage": 1.0})
>>> cache.get("ab12")
{'coverage': 1.0}
>>> cache.get("ab12") is cache.get("ab12")   # always a fresh copy
False
>>> cache.stats()["hits"]
3
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from collections.abc import Callable

__all__ = ["ResultCache", "default_cache", "reset_default_cache"]

_KEY_CHARS = set("0123456789abcdef")


class ResultCache:
    """Bounded LRU of pickled results, optionally spilled to disk.

    Parameters
    ----------
    maxsize:
        Maximum in-memory entries; least recently used are evicted.
        Evicted entries remain on disk when ``disk_dir`` is set, so an
        eviction costs a re-read, not a re-run.
    disk_dir:
        Optional directory for the persistent tier (created on first
        write).  Keys must be hex content addresses (they are file
        names); anything else raises ``ValueError``.
    """

    def __init__(self, maxsize: int = 128, disk_dir: str | None = None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.disk_dir = disk_dir
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._lock = threading.Lock()
        self._inflight: dict[str, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_promotions = 0

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _check_key(key: str) -> str:
        if not isinstance(key, str) or not key or not set(key) <= _KEY_CHARS:
            raise ValueError(
                f"cache keys must be hex content addresses, got {key!r}"
            )
        return key

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"{key}.pickle")

    def _remember(self, key: str, blob: bytes) -> None:
        """Insert into the LRU (lock held by caller)."""
        self._entries[key] = blob
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    # -- the store ----------------------------------------------------------

    def get(self, key: str):
        """The cached value for ``key`` (a fresh unpickled copy), or None.

        Checks the memory LRU first, then the disk tier; a disk hit is
        promoted back into memory.
        """
        key = self._check_key(key)
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None:
                self._entries.move_to_end(key)
                self._hits += 1
        if blob is None and self.disk_dir is not None:
            try:
                with open(self._disk_path(key), "rb") as handle:
                    blob = handle.read()
            except OSError:
                blob = None
            if blob is not None:
                with self._lock:
                    self._remember(key, blob)
                    self._hits += 1
                    self._disk_promotions += 1
        if blob is None:
            with self._lock:
                self._misses += 1
            return None
        return pickle.loads(blob)

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` (pickled; both tiers)."""
        key = self._check_key(key)
        blob = pickle.dumps(value)
        with self._lock:
            self._remember(key, blob)
        if self.disk_dir is not None:
            os.makedirs(self.disk_dir, exist_ok=True)
            path = self._disk_path(key)
            tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)  # atomic: readers never see torn writes

    def get_or_compute(self, key: str,
                       compute: Callable[[], object]) -> tuple[object, bool]:
        """``(value, fresh)`` -- cached copy, or ``compute()`` exactly once.

        ``fresh`` is True when this call ran ``compute``.  Concurrent
        callers with the same key serialize on a per-key lock: one
        computes, the rest get the cached copy.
        """
        key = self._check_key(key)
        value = self.get(key)
        if value is not None:
            return value, False
        with self._lock:
            gate = self._inflight.setdefault(key, threading.Lock())
        try:
            with gate:
                value = self.get(key)  # a racer may have filled it
                if value is not None:
                    return value, False
                result = compute()
                self.put(key, result)
        finally:
            with self._lock:
                self._inflight.pop(key, None)
        return result, True

    # -- bookkeeping --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        return (self.disk_dir is not None
                and os.path.exists(self._disk_path(self._check_key(key))))

    def stats(self) -> dict:
        """Hit/miss/eviction/disk-promotion counters plus current sizes.

        ``disk_promotions`` counts hits served from the disk tier and
        re-pinned in memory -- high values against a small ``maxsize``
        mean the memory LRU is thrashing over the working set.
        """
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "disk_promotions": self._disk_promotions,
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "disk_dir": self.disk_dir,
            }

    def clear(self) -> None:
        """Drop the memory tier and the counters (disk files are kept)."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0
            self._disk_promotions = 0

    def __repr__(self) -> str:
        disk = f", disk={self.disk_dir!r}" if self.disk_dir else ""
        return (f"ResultCache({len(self._entries)}/{self.maxsize} "
                f"entries{disk})")


# -- process default --------------------------------------------------------

_DEFAULT: ResultCache | None = None
_DEFAULT_LOCK = threading.Lock()


def default_cache() -> ResultCache:
    """The process-wide cache ``run_coverage(request)`` consults.

    Created lazily.  ``REPRO_CACHE_DIR`` in the environment enables the
    persistent disk tier; ``REPRO_CACHE_SIZE`` overrides the in-memory
    entry bound (default 128).
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            disk_dir = os.environ.get("REPRO_CACHE_DIR") or None
            maxsize = int(os.environ.get("REPRO_CACHE_SIZE", "128"))
            _DEFAULT = ResultCache(maxsize=maxsize, disk_dir=disk_dir)
        return _DEFAULT


def reset_default_cache() -> None:
    """Drop the process-wide default (tests; env re-read on next use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = None
