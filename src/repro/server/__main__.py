"""``python -m repro.server`` -- serve the campaign API over HTTP.

Runs the pure-asyncio bridge from :mod:`repro.server.http`; no external
server package needed.  Example::

    python -m repro.server --port 8714 --cache-dir /tmp/repro-cache &
    curl -s localhost:8714/schemes | python -m json.tool
    curl -s -X POST localhost:8714/coverage \\
         -d '{"test": "march-c", "n": 64}'
"""

from __future__ import annotations

import argparse

from repro.server.app import create_app
from repro.server.cache import ResultCache
from repro.server.http import run


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve the repro campaign API (coverage, compare, jobs).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8714,
                        help="bind port (default: %(default)s)")
    parser.add_argument("--cache-dir", default=None,
                        help="enable the on-disk result cache tier here")
    parser.add_argument("--cache-size", type=int, default=128,
                        help="in-memory cache entries (default: %(default)s)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    cache = ResultCache(maxsize=args.cache_size, disk_dir=args.cache_dir)
    run(create_app(cache=cache), host=args.host, port=args.port)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
