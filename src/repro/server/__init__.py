"""Campaign-as-a-service: a framework-free async serving layer.

The campaign engines (:mod:`repro.sim`) resolve full fault universes in
milliseconds; this package puts a request surface on top of them so they
can sit behind an HTTP API:

* :mod:`repro.server.cache` -- :class:`ResultCache`, a content-addressed
  store (in-process LRU + optional on-disk pickle directory) keyed on
  :meth:`~repro.analysis.request.CampaignRequest.cache_key`, so a
  repeated campaign is a dict lookup and the persistent
  :func:`~repro.sim.pool.shared_pool` stays warm across requests;
* :mod:`repro.server.jobs` -- thread-offloaded job submission with
  polling and live ``(done, total)`` progress for big campaigns;
* :mod:`repro.server.schemas` -- the JSON request/response schemas and
  their validation (shared with the CLI's ``--json`` mode);
* :mod:`repro.server.app` -- a pure ASGI callable (``POST /coverage``,
  ``POST /compare``, ``GET /schemes``, ``POST /jobs``,
  ``GET /jobs/{id}``, ``GET /jobs/{id}/stream``) with **no framework
  dependency**: it runs under any ASGI server, under the in-repo
  :class:`~repro.server.testing.TestClient`, or under the bundled
  asyncio HTTP bridge (:mod:`repro.server.http`) via
  ``python -m repro.server``.

>>> from repro.server import TestClient, create_app
>>> client = TestClient(create_app())
>>> client.get("/schemes").status
200
"""

from repro.server.app import ReproApp, create_app
from repro.server.cache import ResultCache, default_cache
from repro.server.jobs import Job, JobManager
from repro.server.testing import TestClient

__all__ = [
    "ReproApp",
    "create_app",
    "ResultCache",
    "default_cache",
    "Job",
    "JobManager",
    "TestClient",
]
