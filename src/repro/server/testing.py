"""In-repo ASGI test client: drive :class:`ReproApp` without sockets.

The repo takes no web-framework dependency, so it carries its own tiny
equivalent of ``httpx``/``starlette.testclient``: :class:`TestClient`
builds an ASGI HTTP scope per request, runs the app to completion on a
private event loop (``asyncio.run`` per call -- each request is
hermetic), and collects the sent messages into a :class:`Response`.
Streaming endpoints work too; chunks are concatenated, so an NDJSON
stream comes back as its full line sequence.

>>> from repro.server.app import create_app
>>> client = TestClient(create_app())
>>> response = client.get("/schemes")
>>> response.status, response.headers["content-type"]
(200, 'application/json')
>>> sorted(response.json())
['backends', 'engines', 'schemes']
"""

from __future__ import annotations

import asyncio
import json as _json

__all__ = ["Response", "TestClient"]


class Response:
    """What the app sent: status, headers, and the concatenated body."""

    def __init__(self, status: int, headers: dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    @property
    def text(self) -> str:
        """The body decoded as UTF-8."""
        return self.body.decode("utf-8")

    def json(self):
        """The body parsed as JSON."""
        return _json.loads(self.body)

    def ndjson(self) -> list:
        """The body parsed as newline-delimited JSON (streaming)."""
        return [_json.loads(line)
                for line in self.text.splitlines() if line]

    def __repr__(self) -> str:
        return f"Response({self.status}, {len(self.body)} bytes)"


class TestClient:
    """Synchronous facade over one ASGI app instance.

    The app instance is shared across calls (so its cache and job
    manager persist), but each request runs on a fresh event loop --
    exactly the hermetic shape pytest wants.
    """

    __test__ = False  # not a pytest test class, despite the name

    def __init__(self, app):
        self.app = app

    # -- verbs ---------------------------------------------------------------

    def get(self, path: str) -> Response:
        """``GET path``."""
        return self.request("GET", path)

    def post(self, path: str, json=None) -> Response:
        """``POST path`` with an optional JSON body."""
        return self.request("POST", path, json=json)

    def request(self, method: str, path: str, json=None) -> Response:
        """Run one request through the app and return its response."""
        body = b"" if json is None else _json.dumps(json).encode("utf-8")
        return asyncio.run(self._run(method, path, body))

    # -- ASGI plumbing -------------------------------------------------------

    async def _run(self, method: str, path: str, body: bytes) -> Response:
        headers = [(b"host", b"testclient")]
        if body:
            headers += [
                (b"content-type", b"application/json"),
                (b"content-length", str(len(body)).encode("ascii")),
            ]
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method,
            "scheme": "http",
            "path": path,
            "raw_path": path.encode("utf-8"),
            "query_string": b"",
            "root_path": "",
            "headers": headers,
            "client": ("testclient", 0),
            "server": ("testclient", 80),
        }
        request_messages = [
            {"type": "http.request", "body": body, "more_body": False},
        ]

        async def receive():
            if request_messages:
                return request_messages.pop(0)
            return {"type": "http.disconnect"}

        sent: list[dict] = []

        async def send(message):
            sent.append(message)

        await self.app(scope, receive, send)
        status, response_headers, chunks = 500, {}, []
        for message in sent:
            if message["type"] == "http.response.start":
                status = message["status"]
                response_headers = {
                    name.decode("latin-1"): value.decode("latin-1")
                    for name, value in message.get("headers", [])
                }
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))
        return Response(status, response_headers, b"".join(chunks))
