"""The ASGI application: campaign endpoints with zero framework deps.

:class:`ReproApp` is a plain `ASGI 3 <https://asgi.readthedocs.io>`_
callable -- ``async def __call__(scope, receive, send)`` -- so it runs
unchanged under uvicorn/hypercorn, under the in-repo
:class:`~repro.server.testing.TestClient`, or under the bundled asyncio
HTTP bridge (``python -m repro.server``).  Endpoints:

====== ===================== ============================================
Method Path                  Meaning
====== ===================== ============================================
GET    ``/schemes``          selectable tests/schemes + option vocabulary
GET    ``/stats``            cache + job-queue telemetry counters
POST   ``/coverage``         run (or cache-serve) one campaign, wait
POST   ``/compare``          comparison table over several requests
POST   ``/verify``           statically verify a compiled stream

POST   ``/jobs``             submit a campaign job, return immediately
GET    ``/jobs/{id}``        poll job status/progress/result
GET    ``/jobs/{id}/stream`` NDJSON live progress until the job settles
====== ===================== ============================================

Campaign work never blocks the event loop: synchronous endpoints offload
to the :class:`~repro.server.jobs.JobManager` thread pool and ``await``
the result; ``/jobs`` returns while the same pool works in the
background.  Validation failures (:class:`~repro.server.schemas.
SchemaError`, :class:`~repro.analysis.request.RequestError`) become
``400 {"error": ...}`` bodies -- the message text is the resolver's,
shared verbatim with the CLI.

>>> from repro.server.testing import TestClient
>>> client = TestClient(create_app())
>>> client.get("/schemes").json()["schemes"][0]["test"]
'dual-port'
>>> client.post("/coverage", {"test": "mats", "n": 4}).json()["report"]["overall"] > 0
True
>>> client.post("/coverage", {"test": "mats"}).status
400
"""

from __future__ import annotations

import asyncio
import json

from repro.analysis.compare import compare_tests
from repro.analysis.request import (
    BACKENDS,
    ENGINES,
    RequestError,
    execute_request,
    known_tests,
    resolve_campaign,
)
from repro.server.cache import ResultCache, default_cache
from repro.server.jobs import JobManager
from repro.server.schemas import (
    SchemaError,
    compare_from_dict,
    compare_response,
    coverage_response,
    request_from_dict,
    verify_response,
)

__all__ = ["ReproApp", "create_app"]

_STREAM_POLL_S = 0.05  # progress poll cadence for /jobs/{id}/stream


class _HttpError(Exception):
    def __init__(self, status: int, error: str, **extra):
        super().__init__(error)
        self.status = status
        self.body = {"error": error, **extra}


class ReproApp:
    """The campaign service: routes, cache, and job manager in one object.

    Parameters
    ----------
    cache:
        The :class:`~repro.server.cache.ResultCache` behind every
        endpoint (None = the process-wide default).
    job_manager:
        Override the :class:`~repro.server.jobs.JobManager` (tests);
        default builds one sharing ``cache``.
    """

    def __init__(self, cache: ResultCache | None = None,
                 job_manager: JobManager | None = None):
        self.cache = cache if cache is not None else default_cache()
        self.jobs = (job_manager if job_manager is not None
                     else JobManager(cache=self.cache))

    # -- ASGI ----------------------------------------------------------------

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - websockets etc.
            raise RuntimeError(f"unsupported scope type {scope['type']!r}")
        try:
            await self._dispatch(scope, receive, send)
        except _HttpError as exc:
            await self._send_json(send, exc.status, exc.body)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                self.close()
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _dispatch(self, scope, receive, send) -> None:
        method, path = scope["method"], scope["path"]
        if path == "/schemes":
            self._require(method, "GET")
            await self._send_json(send, 200, self._schemes())
        elif path == "/stats":
            self._require(method, "GET")
            await self._send_json(send, 200, {
                "cache": self.cache.stats(),
                "jobs": self.jobs.stats(),
            })
        elif path == "/coverage":
            self._require(method, "POST")
            body = await self._json_body(receive)
            await self._send_json(send, 200, await self._coverage(body))
        elif path == "/compare":
            self._require(method, "POST")
            body = await self._json_body(receive)
            await self._send_json(send, 200, await self._compare(body))
        elif path == "/verify":
            self._require(method, "POST")
            body = await self._json_body(receive)
            await self._send_json(send, 200, await self._verify(body))
        elif path == "/jobs":
            self._require(method, "POST")
            body = await self._json_body(receive)
            await self._send_json(send, 202, self._submit(body))
        elif path.startswith("/jobs/") and path.endswith("/stream"):
            self._require(method, "GET")
            job_id = path[len("/jobs/"):-len("/stream")]
            await self._stream_job(send, job_id)
        elif path.startswith("/jobs/"):
            self._require(method, "GET")
            job = self.jobs.get(path[len("/jobs/"):])
            if job is None:
                raise _HttpError(404, "unknown job id")
            await self._send_json(send, 200, job.to_dict())
        else:
            raise _HttpError(404, f"unknown path {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    async def _json_body(self, receive) -> dict:
        chunks = []
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise _HttpError(400, "client disconnected")
            chunks.append(message.get("body", b""))
            if not message.get("more_body", False):
                break
        raw = b"".join(chunks)
        try:
            body = json.loads(raw) if raw else {}
        except ValueError as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return body

    # -- endpoints -----------------------------------------------------------

    def _schemes(self) -> dict:
        return {
            "schemes": known_tests(),
            "engines": list(ENGINES),
            "backends": list(BACKENDS),
        }

    async def _offload(self, fn):
        """Run blocking campaign work on the job pool, translate errors."""
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self.jobs.executor, fn)
        except (SchemaError, RequestError) as exc:
            raise _HttpError(400, str(exc)) from None

    async def _coverage(self, body: dict) -> dict:
        request = self._parse(request_from_dict, body)
        outcome = await self._offload(
            lambda: execute_request(request, cache=self.cache))
        return coverage_response(request, outcome)

    async def _verify(self, body: dict) -> dict:
        # The request surface is the coverage body (engine/backend/
        # workers are accepted and ignored -- verification is static).
        request = self._parse(request_from_dict, body)

        def run() -> dict:
            from repro.sim.verify import verify

            resolved = resolve_campaign(request)
            stream = resolved.compile()
            return verify_response(request, stream, verify(stream))

        return await self._offload(run)

    async def _compare(self, body: dict) -> dict:
        requests = self._parse(compare_from_dict, body)
        rows = await self._offload(
            lambda: compare_tests(requests, cache=self.cache))
        return compare_response(requests, rows)

    def _submit(self, body: dict) -> dict:
        kind = body.get("kind", "coverage")
        payload = body.get("request")
        if not isinstance(payload, dict):
            raise _HttpError(400, "request: missing required field",
                             field="request")
        try:
            if kind == "coverage":
                job = self.jobs.submit_coverage(
                    self._parse(request_from_dict, payload))
            elif kind == "compare":
                job = self.jobs.submit_compare(
                    self._parse(compare_from_dict, payload))
            else:
                raise _HttpError(400,
                                 f"kind must be 'coverage' or 'compare', "
                                 f"got {kind!r}", field="kind")
        except RequestError as exc:
            raise _HttpError(400, str(exc)) from None
        return job.to_dict()

    def _parse(self, parser, body: dict):
        try:
            return parser(body)
        except SchemaError as exc:
            raise _HttpError(400, str(exc), field=exc.field) from None
        except RequestError as exc:
            raise _HttpError(400, str(exc)) from None

    async def _stream_job(self, send, job_id: str) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            raise _HttpError(404, "unknown job id")
        await send({
            "type": "http.response.start",
            "status": 200,
            "headers": [(b"content-type", b"application/x-ndjson")],
        })

        def line(payload: dict) -> bytes:
            return json.dumps(payload).encode("utf-8") + b"\n"

        last = None
        while True:
            snapshot = job.to_dict()
            settled = snapshot["status"] in ("done", "error")
            if settled or snapshot != last:
                await send({"type": "http.response.body",
                            "body": line(snapshot),
                            "more_body": not settled})
                last = snapshot
            if settled:
                return
            await asyncio.sleep(_STREAM_POLL_S)

    # -- plumbing ------------------------------------------------------------

    @staticmethod
    async def _send_json(send, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        await send({
            "type": "http.response.start",
            "status": status,
            "headers": [
                (b"content-type", b"application/json"),
                (b"content-length", str(len(body)).encode("ascii")),
            ],
        })
        await send({"type": "http.response.body", "body": body})

    def close(self) -> None:
        """Drain the job pool (lifespan shutdown / tests)."""
        self.jobs.close()


def create_app(cache: ResultCache | None = None) -> ReproApp:
    """Build the service (the conventional ASGI factory entry point).

    ``cache=None`` shares the process-wide default cache -- campaigns
    run via :func:`~repro.analysis.coverage.run_coverage` in the same
    process warm the server's endpoints, and vice versa.
    """
    return ReproApp(cache=cache)
