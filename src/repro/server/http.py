"""A minimal asyncio HTTP/1.1 bridge for the ASGI app -- no server dep.

``python -m repro.server`` has to work in a bare environment, so this
module adapts :class:`~repro.server.app.ReproApp` onto
:func:`asyncio.start_server` directly: parse one request (request line,
headers, ``Content-Length`` body), translate it into an ASGI HTTP scope,
stream the app's response back (``Content-Length`` when the app declares
one, chunked transfer-encoding otherwise -- which is how the NDJSON job
stream reaches ``curl`` live), then close.  One request per connection
(``Connection: close``): campaigns dwarf connection setup, and the
simplicity is the point.  Production deployments should point a real
ASGI server (uvicorn etc.) at ``repro.server.app:create_app`` instead.

>>> REASONS[404]
'Not Found'
>>> _status_line(200)
b'HTTP/1.1 200 OK\\r\\n'
"""

from __future__ import annotations

import asyncio
import contextlib

__all__ = ["REASONS", "serve", "run"]

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}

_MAX_BODY = 8 * 1024 * 1024  # campaigns are small JSON; refuse the rest


def _status_line(status: int) -> bytes:
    reason = REASONS.get(status, "Unknown")
    return f"HTTP/1.1 {status} {reason}\r\n".encode("ascii")


async def _read_request(reader: asyncio.StreamReader):
    """``(method, path, headers, body)`` or None on a closed socket."""
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    try:
        method, target, _version = request_line.decode("ascii").split()
    except ValueError as exc:
        raise ValueError(
            f"malformed request line {request_line!r}") from exc
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY:
        raise ValueError(f"request body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    path, _, query = target.partition("?")
    return method, path, query, headers, body


def _scope(method: str, path: str, query: str, headers: dict,
           peer) -> dict:
    return {
        "type": "http",
        "asgi": {"version": "3.0", "spec_version": "2.3"},
        "http_version": "1.1",
        "method": method.upper(),
        "scheme": "http",
        "path": path,
        "raw_path": path.encode("utf-8"),
        "query_string": query.encode("utf-8"),
        "root_path": "",
        "headers": [(k.encode("latin-1"), v.encode("latin-1"))
                    for k, v in headers.items()],
        "client": peer,
        "server": None,
    }


async def _handle(app, reader: asyncio.StreamReader,
                  writer: asyncio.StreamWriter) -> None:
    try:
        try:
            parsed = await _read_request(reader)
        except (ValueError, asyncio.IncompleteReadError) as exc:
            writer.write(_status_line(400))
            writer.write(b"content-length: 0\r\nconnection: close\r\n\r\n")
            await writer.drain()
            del exc
            return
        if parsed is None:
            return
        method, path, query, headers, body = parsed
        scope = _scope(method, path, query, headers,
                       writer.get_extra_info("peername"))
        request_messages = [
            {"type": "http.request", "body": body, "more_body": False},
        ]

        async def receive():
            if request_messages:
                return request_messages.pop(0)
            return {"type": "http.disconnect"}

        state = {"started": False, "chunked": False}

        async def send(message):
            if message["type"] == "http.response.start":
                writer.write(_status_line(message["status"]))
                declared = dict(message.get("headers", []))
                for name, value in declared.items():
                    writer.write(name + b": " + value + b"\r\n")
                if b"content-length" not in declared:
                    state["chunked"] = True
                    writer.write(b"transfer-encoding: chunked\r\n")
                writer.write(b"connection: close\r\n\r\n")
                state["started"] = True
            elif message["type"] == "http.response.body":
                chunk = message.get("body", b"")
                if state["chunked"]:
                    if chunk:
                        writer.write(f"{len(chunk):x}\r\n".encode("ascii"))
                        writer.write(chunk + b"\r\n")
                    if not message.get("more_body", False):
                        writer.write(b"0\r\n\r\n")
                else:
                    writer.write(chunk)
                await writer.drain()

        try:
            await app(scope, receive, send)
        except Exception:
            if not state["started"]:
                writer.write(_status_line(500))
                writer.write(b"content-length: 0\r\n"
                             b"connection: close\r\n\r\n")
            await writer.drain()
    finally:
        with contextlib.suppress(ConnectionError, OSError):
            writer.close()
            await writer.wait_closed()


async def serve(app, host: str = "127.0.0.1", port: int = 8714):
    """Serve ``app`` forever on ``host:port`` (returns the server once
    listening; callers ``await server.serve_forever()``)."""
    return await asyncio.start_server(
        lambda r, w: _handle(app, r, w), host=host, port=port)


def run(app, host: str = "127.0.0.1", port: int = 8714) -> None:
    """Blocking entry point behind ``python -m repro.server``."""

    async def main():
        server = await serve(app, host=host, port=port)
        addresses = ", ".join(
            f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
            for sock in server.sockets)
        print(f"repro.server listening on http://{addresses}")
        async with server:
            await server.serve_forever()

    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(main())
