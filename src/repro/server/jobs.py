"""Thread-offloaded campaign jobs: submit, poll, stream progress.

``POST /coverage`` is synchronous -- fine for cached or small campaigns,
hostile for a cold ``standard_universe(4096)`` run.  The job layer turns
those into ``POST /jobs`` + ``GET /jobs/{id}``: the campaign runs on a
private :class:`~concurrent.futures.ThreadPoolExecutor` (its *own* pool,
never asyncio's default executor, so the event loop shuts down cleanly
while jobs are still draining) and the :class:`Job` record tracks
``queued -> running -> done | error`` plus live ``(done, total)``
progress fed by the campaign engines' ``progress`` callback.

Campaign work still funnels through
:func:`~repro.analysis.request.execute_request`, so jobs share the
content-addressed :class:`~repro.server.cache.ResultCache` with the
synchronous endpoints -- submitting a job for a cached request completes
in microseconds.

>>> from repro.analysis.request import CampaignRequest
>>> manager = JobManager()
>>> job = manager.submit_coverage(CampaignRequest(test="mats", n=8))
>>> manager.wait(job.id).status
'done'
>>> 0.0 < manager.get(job.id).result["report"]["overall"] <= 1.0
True
>>> manager.close()
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.analysis.request import CampaignRequest, execute_request, resolve_campaign

__all__ = ["Job", "JobManager"]

_STATUSES = ("queued", "running", "done", "error")


@dataclass
class Job:
    """One submitted campaign: status, progress, and (eventually) result."""

    id: str
    kind: str  # "coverage" | "compare"
    status: str = "queued"
    progress: tuple[int, int] = (0, 0)  # (faults done, faults total)
    result: dict | None = None
    error: str | None = None

    def to_dict(self) -> dict:
        """The ``GET /jobs/{id}`` response body."""
        done, total = self.progress
        out = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "progress": {"done": done, "total": total},
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out


class JobManager:
    """Owns the worker threads and the bounded job table.

    Parameters
    ----------
    cache:
        The :class:`~repro.server.cache.ResultCache` campaign work runs
        against (None = the process default).
    max_workers:
        Concurrent campaigns (threads).  The engines release the GIL in
        their numpy inner loops, so two is a useful default even
        in-process.
    history:
        Finished jobs retained for polling; the oldest are dropped
        beyond this bound.
    """

    def __init__(self, cache=None, max_workers: int = 2,
                 history: int = 256):
        self.cache = cache
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-job")
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._history = history
        self._events: dict[str, threading.Event] = {}

    # -- submission ----------------------------------------------------------

    def _new_job(self, kind: str) -> Job:
        with self._lock:
            job = Job(id=f"job-{next(self._ids)}", kind=kind)
            self._jobs[job.id] = job
            self._events[job.id] = threading.Event()
            while len(self._jobs) > self._history:
                stale_id, stale = next(iter(self._jobs.items()))
                if stale.status in ("done", "error"):
                    del self._jobs[stale_id]
                    self._events.pop(stale_id, None)
                else:
                    break  # never drop a live job
        return job

    def submit_coverage(self, request: CampaignRequest) -> Job:
        """Queue one coverage campaign; returns the (queued) job."""
        resolve_campaign(request)  # validate *before* queueing
        job = self._new_job("coverage")
        self.executor.submit(self._run_coverage, job, request)
        return job

    def submit_compare(self, requests: list[CampaignRequest]) -> Job:
        """Queue a comparison table over several requests."""
        for request in requests:
            resolve_campaign(request)
        job = self._new_job("compare")
        self.executor.submit(self._run_compare, job, requests)
        return job

    # -- the workers ---------------------------------------------------------

    def _finish(self, job: Job, *, result: dict | None = None,
                error: str | None = None) -> None:
        with self._lock:
            job.result = result
            job.error = error
            job.status = "error" if error is not None else "done"
            event = self._events.get(job.id)
        if event is not None:
            event.set()

    def _progress_cb(self, job: Job):
        def progress(done: int, total: int) -> None:
            job.progress = (done, total)
        return progress

    def _run_coverage(self, job: Job, request: CampaignRequest) -> None:
        from repro.server.schemas import coverage_response

        job.status = "running"
        try:
            outcome = execute_request(request, cache=self.cache,
                                      progress=self._progress_cb(job))
            total = sum(outcome.report.total.values())
            job.progress = (total, total)
            self._finish(job, result=coverage_response(request, outcome))
        except Exception as exc:  # surfaced to the poller, not the log
            self._finish(job, error=f"{type(exc).__name__}: {exc}")

    def _run_compare(self, job: Job,
                     requests: list[CampaignRequest]) -> None:
        from repro.server.schemas import compare_response

        job.status = "running"
        try:
            rows = []
            for index, request in enumerate(requests):
                resolved = resolve_campaign(request)
                outcome = execute_request(request, cache=self.cache,
                                          test_name=resolved.display_name)
                from repro.analysis.compare import ComparisonRow
                row = ComparisonRow(name=resolved.display_name,
                                    operations=resolved.operations,
                                    report=outcome.report)
                row._ops_per_cell = resolved.operations / request.n
                rows.append(row)
                job.progress = (index + 1, len(requests))
            self._finish(job, result=compare_response(requests, rows))
        except Exception as exc:
            self._finish(job, error=f"{type(exc).__name__}: {exc}")

    # -- polling -------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        """The job record, or None for unknown/expired ids."""
        with self._lock:
            return self._jobs.get(job_id)

    def stats(self) -> dict:
        """Queue-depth snapshot for ``GET /stats``: jobs per status plus
        the number tracked (bounded by ``history``)."""
        with self._lock:
            counts = dict.fromkeys(_STATUSES, 0)
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            counts["tracked"] = len(self._jobs)
            return counts

    def wait(self, job_id: str, timeout: float | None = None) -> Job | None:
        """Block until the job finishes (tests and the NDJSON stream)."""
        with self._lock:
            event = self._events.get(job_id)
        if event is None:
            return self.get(job_id)
        event.wait(timeout)
        return self.get(job_id)

    def close(self) -> None:
        """Stop accepting work and wait for running jobs."""
        self.executor.shutdown(wait=True)
