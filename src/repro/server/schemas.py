"""JSON request/response schemas for the serving layer (and ``--json`` CLI).

One schema, three consumers: the HTTP endpoints of
:mod:`repro.server.app`, the CLI's ``--json`` machine-readable output,
and any client scripting against either.  Everything here is plain
dict <-> dataclass plumbing with *pointed* validation:
:class:`SchemaError` always names the offending field, and the app layer
turns it into a 400 with ``{"error": ..., "field": ...}``.

Request bodies
--------------

``POST /coverage`` takes a JSON object mirroring
:class:`~repro.analysis.request.CampaignRequest`::

    {"test": "march-c", "n": 64, "m": 1,
     "engine": "auto", "backend": "auto", "workers": 0,
     "pure": false, "poly": null,
     "universe": {"generator": "single_cell",
                  "kwargs": {"n": 64, "m": 1,
                             "classes": ["SAF", "TF"], "retention": 64}}}

Only ``test`` and ``n`` are required; ``universe: null`` selects the
standard universe.  Nested specs use ``generator``/``kwargs``/``parts``
exactly like :class:`~repro.faults.universe.UniverseSpec`.

``POST /compare`` takes ``{"requests": [<coverage body>, ...]}`` or the
shorthand ``{"tests": ["prt3", "march-c"], "n": 28, ...}`` (shared
options applied to every test).

>>> request = request_from_dict({"test": "march-c", "n": 16})
>>> request.n, request.engine
(16, 'auto')
>>> request_from_dict({"test": "march-c"})
Traceback (most recent call last):
        ...
repro.server.schemas.SchemaError: n: missing required field
"""

from __future__ import annotations

from dataclasses import asdict

from repro.analysis.compare import ComparisonRow
from repro.analysis.coverage import CoverageReport
from repro.analysis.request import CampaignRequest, RequestOutcome
from repro.faults.universe import UniverseSpec

__all__ = [
    "SchemaError",
    "request_from_dict",
    "request_to_dict",
    "compare_from_dict",
    "spec_from_dict",
    "spec_to_dict",
    "report_to_dict",
    "coverage_response",
    "compare_response",
    "comparison_row_to_dict",
    "diagnostic_to_dict",
    "verify_response",
]

#: Diagnostics listed per verify response; the rest is summarized in the
#: per-code counts (a pathological stream can carry one finding per op).
_MAX_DIAGNOSTICS = 200


class SchemaError(ValueError):
    """A JSON body failed validation; ``field`` names the culprit."""

    def __init__(self, field: str, message: str):
        super().__init__(f"{field}: {message}")
        self.field = field
        self.reason = message


_REQUEST_FIELDS = {
    "test": (str, True),
    "n": (int, True),
    "m": (int, False),
    "universe": (dict, False),
    "engine": (str, False),
    "backend": (str, False),
    "workers": (int, False),
    "pure": (bool, False),
    "poly": (str, False),
}


def _check_type(field: str, value, expected: type):
    # bool is an int subclass; "n": true must not pass as an int.
    if expected is int and isinstance(value, bool):
        raise SchemaError(field, f"expected an integer, got {value!r}")
    if not isinstance(value, expected):
        raise SchemaError(
            field,
            f"expected {expected.__name__}, got {type(value).__name__}"
        )
    return value


def _jsonify(value):
    """kwargs values back to JSON shape (tuples -> lists, recursively)."""
    if isinstance(value, tuple):
        return [_jsonify(v) for v in value]
    return value


def _dejsonify(value):
    """JSON kwargs values to the hashable shape specs store."""
    if isinstance(value, list):
        return tuple(_dejsonify(v) for v in value)
    return value


def spec_to_dict(spec: UniverseSpec) -> dict:
    """A :class:`UniverseSpec` as a JSON-ready dict (inverse of
    :func:`spec_from_dict`)."""
    out: dict = {"generator": spec.generator}
    if spec.kwargs:
        out["kwargs"] = {k: _jsonify(v) for k, v in spec.kwargs}
    if spec.parts:
        out["parts"] = [spec_to_dict(part) for part in spec.parts]
    return out


def spec_from_dict(data: dict, field: str = "universe") -> UniverseSpec:
    """Parse a nested ``{"generator", "kwargs", "parts"}`` spec dict.

    Generator-name validity is checked later by the shared resolver;
    this layer only enforces the structural shape.
    """
    _check_type(field, data, dict)
    unknown = set(data) - {"generator", "kwargs", "parts"}
    if unknown:
        raise SchemaError(field, f"unknown spec field(s) {sorted(unknown)}")
    generator = _check_type(f"{field}.generator",
                            data.get("generator"), str) \
        if "generator" in data else None
    if generator is None:
        raise SchemaError(f"{field}.generator", "missing required field")
    kwargs = data.get("kwargs", {})
    _check_type(f"{field}.kwargs", kwargs, dict)
    for key in kwargs:
        _check_type(f"{field}.kwargs", key, str)
    parts = data.get("parts", [])
    _check_type(f"{field}.parts", parts, list)
    return UniverseSpec(
        generator=generator,
        kwargs=tuple(sorted((k, _dejsonify(v)) for k, v in kwargs.items())),
        parts=tuple(spec_from_dict(part, field=f"{field}.parts[{i}]")
                    for i, part in enumerate(parts)),
    )


def request_from_dict(data: dict) -> CampaignRequest:
    """Validate a ``POST /coverage`` body into a
    :class:`CampaignRequest`.

    Structural validation only (types, required/unknown fields);
    semantic validation -- known tests, engines, generators -- is the
    resolver's job, so the two layers never disagree.
    """
    _check_type("request", data, dict)
    unknown = set(data) - set(_REQUEST_FIELDS)
    if unknown:
        raise SchemaError("request",
                          f"unknown field(s) {sorted(unknown)}")
    kwargs = {}
    for field, (expected, required) in _REQUEST_FIELDS.items():
        if field not in data or data[field] is None:
            if required:
                raise SchemaError(field, "missing required field")
            continue
        value = _check_type(field, data[field], expected)
        if field == "universe":
            value = spec_from_dict(value)
        kwargs[field] = value
    return CampaignRequest(**kwargs)


def request_to_dict(request: CampaignRequest) -> dict:
    """A :class:`CampaignRequest` as the JSON body that produces it."""
    out = asdict(request)
    out["universe"] = (spec_to_dict(request.universe)
                       if request.universe is not None else None)
    return out


def compare_from_dict(data: dict) -> list[CampaignRequest]:
    """Validate a ``POST /compare`` body into request objects.

    Accepts ``{"requests": [...]}`` (full per-row bodies) or the
    shorthand ``{"tests": [...], ...shared options}``.
    """
    _check_type("request", data, dict)
    if "requests" in data and "tests" in data:
        raise SchemaError("request",
                          "pass either 'requests' or 'tests', not both")
    if "requests" in data:
        entries = _check_type("requests", data["requests"], list)
        extra = set(data) - {"requests"}
        if extra:
            raise SchemaError("request",
                              f"unknown field(s) {sorted(extra)}")
        if not entries:
            raise SchemaError("requests", "needs at least one entry")
        return [request_from_dict(_check_type(f"requests[{i}]", entry, dict))
                for i, entry in enumerate(entries)]
    if "tests" not in data:
        raise SchemaError("request", "missing 'requests' or 'tests'")
    tests = _check_type("tests", data["tests"], list)
    if not tests:
        raise SchemaError("tests", "needs at least one entry")
    shared = {k: v for k, v in data.items() if k != "tests"}
    return [
        request_from_dict(
            dict(shared, test=_check_type(f"tests[{i}]", test, str)))
        for i, test in enumerate(tests)
    ]


def report_to_dict(report: CoverageReport) -> dict:
    """A :class:`CoverageReport` as the canonical JSON response shape."""
    return {
        "test_name": report.test_name,
        "overall": report.overall,
        "classes": {
            fault_class: {
                "detected": detected,
                "total": total,
                "coverage": ratio,
            }
            for fault_class, detected, total, ratio in report.rows()
        },
        "missed_faults": list(report.missed_faults),
    }


def coverage_response(request: CampaignRequest,
                      outcome: RequestOutcome) -> dict:
    """The ``POST /coverage`` response body (also the CLI ``--json``
    output)."""
    return {
        "request": request_to_dict(request),
        "report": report_to_dict(outcome.report),
        "cached": outcome.cached,
        "cache_key": outcome.cache_key,
        "elapsed_s": round(outcome.elapsed_s, 6),
    }


def diagnostic_to_dict(diagnostic) -> dict:
    """One :class:`~repro.sim.diagnostics.Diagnostic` as JSON."""
    return {
        "code": diagnostic.code,
        "severity": diagnostic.severity,
        "index": diagnostic.index,
        "message": diagnostic.message,
    }


def verify_response(request: CampaignRequest, stream, report) -> dict:
    """The ``POST /verify`` response body (also ``repro verify --json``).

    ``diagnostics`` is truncated to the first ``200`` findings
    (``truncated`` says so); ``counts`` always covers every finding.
    """
    diagnostics = report.diagnostics
    counts: dict[str, int] = {}
    for diagnostic in diagnostics:
        counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
    return {
        "request": request_to_dict(request),
        "stream": {
            "name": stream.name,
            "source": stream.source,
            "n": stream.n,
            "m": stream.m,
            "ports": stream.ports,
            "records": len(stream.ops),
            "digest": stream.digest(),
        },
        "ok": report.ok,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "counts": counts,
        "diagnostics": [diagnostic_to_dict(d)
                        for d in diagnostics[:_MAX_DIAGNOSTICS]],
        "truncated": len(diagnostics) > _MAX_DIAGNOSTICS,
    }


def comparison_row_to_dict(row: ComparisonRow) -> dict:
    """One comparison-table row as JSON."""
    return {
        "name": row.name,
        "operations": row.operations,
        "ops_per_cell": row.ops_per_cell,
        "overall": row.overall,
        "coverage": {c: row.coverage(c) for c in row.report.classes},
        "report": report_to_dict(row.report),
    }


def compare_response(requests: list[CampaignRequest], rows) -> dict:
    """The ``POST /compare`` response body."""
    return {
        "requests": [request_to_dict(request) for request in requests],
        "rows": [comparison_row_to_dict(row) for row in rows],
    }
