"""March test engine and standard test library (the paper's baseline).

March algorithms are the industry-standard RAM tests the paper positions
pseudo-ring testing against.  A March test is a sequence of *March
elements*; each element traverses the whole address space in a fixed order
(``⇑`` ascending, ``⇓`` descending, ``c`` don't-care) applying the same
read/write sequence at every address.  The paper's §1 example:

    MarchA = {c(w0); ⇑(r0w1); ⇓(r1w0)}     (which is actually MATS+)

This subpackage provides:

* :mod:`repro.march.notation` -- a parser for the formal notation of [1]
  (both Unicode ``⇑⇓c`` and ASCII ``u d a`` arrows),
* :mod:`repro.march.model` -- the March data model and complexity
  accounting,
* :mod:`repro.march.engine` -- execution over the behavioural RAM with
  read-expectation checking and word-background support,
* :mod:`repro.march.library` -- MATS, MATS+, MATS++, March X/Y/C-/A/B.
"""

from repro.march.model import MarchOperation, MarchElement, MarchDelay, MarchTest
from repro.march.notation import parse_march, format_march, MarchParseError
from repro.march.engine import (
    run_march,
    run_march_interpreted,
    MarchResult,
    word_backgrounds,
)
from repro.march.library import (
    MATS,
    MATS_PLUS,
    MATS_PLUS_PLUS,
    MARCH_X,
    MARCH_Y,
    MARCH_C_MINUS,
    MARCH_A,
    MARCH_B,
    MATS_PLUS_RETENTION,
    ALL_MARCH_TESTS,
)

__all__ = [
    "MarchOperation",
    "MarchElement",
    "MarchDelay",
    "MarchTest",
    "parse_march",
    "format_march",
    "MarchParseError",
    "run_march",
    "run_march_interpreted",
    "MarchResult",
    "word_backgrounds",
    "MATS",
    "MATS_PLUS",
    "MATS_PLUS_PLUS",
    "MARCH_X",
    "MARCH_Y",
    "MARCH_C_MINUS",
    "MARCH_A",
    "MARCH_B",
    "MATS_PLUS_RETENTION",
    "ALL_MARCH_TESTS",
]
