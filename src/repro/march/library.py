"""The standard March test library.

The classical algorithms, in increasing strength/cost, with their formal
notation and per-cell operation counts:

==========  ==========================  =====  ===============================
test        notation                    ops/N  covers (single-fault)
==========  ==========================  =====  ===============================
MATS        {c(w0);c(r0,w1);c(r1)}        4n   SAF
MATS+       {c(w0);⇑(r0,w1);⇓(r1,w0)}     5n   SAF, AF
MATS++      {c(w0);⇑(r0,w1);⇓(r1,w0,r0)}  6n   SAF, AF, TF
March X     + final read                  6n   SAF, AF, TF, CFin
March Y     + read-after-write            8n   SAF, AF, TF, CFin, linked TF
March C-    4 marching elements + reads  10n   SAF, AF, TF, all 2-cell CFs
March A     write-heavy elements         15n   SAF, AF, TF, CFin, some CFid
March B     March A + extra reads        17n   March A + linked faults
==========  ==========================  =====  ===============================

(The paper's §1 example "MarchA = {c(w0); ⇑(r0w1); ⇓(r1w0)}" is actually
MATS+ in van de Goor's naming; we follow van de Goor.)
"""

from __future__ import annotations

from repro.march.model import MarchTest
from repro.march.notation import parse_march

__all__ = [
    "MATS",
    "MATS_PLUS",
    "MATS_PLUS_PLUS",
    "MARCH_X",
    "MARCH_Y",
    "MARCH_C_MINUS",
    "MARCH_A",
    "MARCH_B",
    "MATS_PLUS_RETENTION",
    "ALL_MARCH_TESTS",
]

MATS: MarchTest = parse_march("{c(w0); c(r0,w1); c(r1)}", name="MATS")
"""MATS, 4n: the minimal stuck-at test."""

MATS_PLUS: MarchTest = parse_march("{c(w0); ⇑(r0,w1); ⇓(r1,w0)}", name="MATS+")
"""MATS+, 5n: adds address-order marching (detects AFs).  This is the
algorithm the paper's introduction quotes."""

MATS_PLUS_PLUS: MarchTest = parse_march(
    "{c(w0); ⇑(r0,w1); ⇓(r1,w0,r0)}", name="MATS++"
)
"""MATS++, 6n: MATS+ plus a trailing read for transition faults."""

MARCH_X: MarchTest = parse_march(
    "{c(w0); ⇑(r0,w1); ⇓(r1,w0); c(r0)}", name="March X"
)
"""March X, 6n: detects inversion coupling faults."""

MARCH_Y: MarchTest = parse_march(
    "{c(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); c(r0)}", name="March Y"
)
"""March Y, 8n: March X with read-after-write (linked TFs)."""

MARCH_C_MINUS: MarchTest = parse_march(
    "{c(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); c(r0)}", name="March C-"
)
"""March C-, 10n: the workhorse -- all unlinked two-cell coupling faults."""

MARCH_A: MarchTest = parse_march(
    "{c(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}",
    name="March A",
)
"""March A, 15n: write-heavy element structure for linked coupling faults."""

MARCH_B: MarchTest = parse_march(
    "{c(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}",
    name="March B",
)
"""March B, 17n: March A plus extra verifying reads."""

MATS_PLUS_RETENTION: MarchTest = parse_march(
    "{c(w0); D256; c(r0,w1); D256; c(r1,w0); ⇑(r0,w1); ⇓(r1,w0)}",
    name="MATS+R",
)
"""MATS+ with retention pauses (the industrial ``Del`` add-on): each
background rests 256 idle cycles before its verifying read, so leaky
cells (DRFs with retention below the pause) decay and are caught."""

ALL_MARCH_TESTS: tuple[MarchTest, ...] = (
    MATS,
    MATS_PLUS,
    MATS_PLUS_PLUS,
    MARCH_X,
    MARCH_Y,
    MARCH_C_MINUS,
    MARCH_A,
    MARCH_B,
)
"""All delay-free library tests, weakest first."""
