"""Data model for March tests.

A :class:`MarchTest` is a list of :class:`MarchElement`; an element has an
address order (ascending / descending / don't-care) and a list of
:class:`MarchOperation` applied at every address.  Operations carry the
symbolic data value ``d`` in {0, 1}; for word-oriented memories the engine
maps ``0`` to the current data background and ``1`` to its complement
(van de Goor's standard WOM extension).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MarchOperation", "MarchElement", "MarchDelay", "MarchTest"]

_ORDERS = ("up", "down", "any")


@dataclass(frozen=True)
class MarchDelay:
    """A delay ("pause") element: the memory idles for ``cycles`` cycles.

    Retention tests insert delays so leaky cells have time to decay
    before the verifying read (van de Goor's ``Del`` element).

    >>> str(MarchDelay(100))
    'D100'
    """

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError(f"delay must be >= 1 cycle, got {self.cycles}")

    def __str__(self) -> str:
        return f"D{self.cycles}"


@dataclass(frozen=True)
class MarchOperation:
    """``r0 / r1 / w0 / w1``: read-expect or write of d / complement-of-d.

    >>> MarchOperation("r", 0).symbol
    'r0'
    """

    kind: str  # "r" or "w"
    data: int  # 0 = background, 1 = complemented background

    def __post_init__(self) -> None:
        if self.kind not in ("r", "w"):
            raise ValueError(f"operation kind must be 'r'/'w', got {self.kind!r}")
        if self.data not in (0, 1):
            raise ValueError(f"operation data must be 0/1, got {self.data!r}")

    @property
    def symbol(self) -> str:
        """Compact notation, e.g. ``'w1'``."""
        return f"{self.kind}{self.data}"

    def __str__(self) -> str:
        return self.symbol


@dataclass(frozen=True)
class MarchElement:
    """One March element: an address order plus per-address operations.

    >>> element = MarchElement("up", (MarchOperation("r", 0),
    ...                               MarchOperation("w", 1)))
    >>> str(element)
    '⇑(r0,w1)'
    """

    order: str  # "up", "down" or "any"
    ops: tuple[MarchOperation, ...]

    def __post_init__(self) -> None:
        if self.order not in _ORDERS:
            raise ValueError(
                f"order must be one of {_ORDERS}, got {self.order!r}"
            )
        if not self.ops:
            raise ValueError("a March element needs at least one operation")

    @property
    def arrow(self) -> str:
        """Unicode arrow for this element's order."""
        return {"up": "⇑", "down": "⇓", "any": "c"}[self.order]

    def addresses(self, n: int) -> range:
        """The address sequence this element walks over ``n`` cells.

        Don't-care order is executed ascending by convention.
        """
        if self.order == "down":
            return range(n - 1, -1, -1)
        return range(n)

    def __str__(self) -> str:
        return f"{self.arrow}({','.join(op.symbol for op in self.ops)})"


@dataclass(frozen=True)
class MarchTest:
    """A complete March algorithm (marching elements + optional delays).

    >>> from repro.march import parse_march
    >>> test = parse_march("{c(w0); u(r0,w1); d(r1,w0)}", name="MATS+")
    >>> test.ops_per_cell
    5
    >>> test.operation_count(1024)
    5120
    """

    name: str
    elements: tuple[MarchElement | MarchDelay, ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("a March test needs at least one element")
        if not any(isinstance(e, MarchElement) for e in self.elements):
            raise ValueError("a March test needs at least one marching element")

    @property
    def march_elements(self) -> tuple[MarchElement, ...]:
        """Only the marching (non-delay) elements."""
        return tuple(e for e in self.elements if isinstance(e, MarchElement))

    @property
    def ops_per_cell(self) -> int:
        """Total operations applied to each cell (the k in "kN test")."""
        return sum(len(element.ops) for element in self.march_elements)

    @property
    def delay_cycles(self) -> int:
        """Total idle cycles contributed by delay elements."""
        return sum(e.cycles for e in self.elements if isinstance(e, MarchDelay))

    def operation_count(self, n: int) -> int:
        """Total memory operations for an n-cell memory (delays excluded:
        they cost time, not operations)."""
        return self.ops_per_cell * n

    def __str__(self) -> str:
        inner = "; ".join(str(element) for element in self.elements)
        return f"{{{inner}}}"
