"""Execution of March tests on the behavioural RAM.

The engine walks each element's address sequence, issuing writes and
checking reads against their expected values.  Any read mismatch is a
*detection*; the test is failed and the mismatches are reported.

Word-oriented memories use *data backgrounds*: the symbolic ``0`` writes
the background word ``b`` and ``1`` writes its complement.  Running the
test under the standard set of ``ceil(log2 m) + 1`` backgrounds (see
:func:`word_backgrounds`) extends bit-oriented fault coverage to
intra-word faults, at a proportional cost in test time -- the trade the
paper's WOM PRT schemes compete against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.march.model import MarchDelay, MarchTest

__all__ = ["MarchResult", "run_march", "run_march_interpreted",
           "word_backgrounds"]


@dataclass
class MarchResult:
    """Outcome of one March run.

    Attributes
    ----------
    passed:
        True when every read returned its expected value under every
        background.
    failures:
        ``(background, element_index, address, expected, actual)`` tuples.
    operations:
        Total memory operations issued.
    """

    passed: bool = True
    failures: list[tuple[int, int, int, int, int]] = field(default_factory=list)
    operations: int = 0

    def __repr__(self) -> str:
        status = "PASS" if self.passed else f"FAIL({len(self.failures)})"
        return f"MarchResult({status}, {self.operations} ops)"


def word_backgrounds(m: int) -> list[int]:
    """Standard data backgrounds for an m-bit word.

    The classical set: all-zeros plus the ``ceil(log2 m)`` "checkerboard"
    patterns of alternating runs of 1, 2, 4, ... bits.  Together with their
    complements (exercised by the ``1`` operations of the March test) these
    distinguish any two bits of a word.

    >>> [bin(b) for b in word_backgrounds(4)]
    ['0b0', '0b101', '0b11']
    >>> word_backgrounds(1)
    [0]
    """
    if m < 1:
        raise ValueError(f"word width must be >= 1, got {m}")
    backgrounds = [0]
    run = 1
    while run < m:
        pattern = 0
        for bit in range(m):
            if (bit // run) % 2 == 0:
                pattern |= 1 << bit
        backgrounds.append(pattern)
        run <<= 1
    return backgrounds


def run_march(test: MarchTest, ram, backgrounds: list[int] | None = None,
              stop_on_first_failure: bool = False,
              compiled: bool = True) -> MarchResult:
    """Run a March test on a RAM front-end.

    This is a thin adapter over :mod:`repro.sim`: the test is lowered to
    a flat operation stream (:func:`repro.sim.compilers.compile_march`)
    and replayed through the RAM's bulk ``apply_stream`` entry point,
    producing a result identical to the interpreted walk (which remains
    available as :func:`run_march_interpreted`, or via
    ``compiled=False``).  Campaigns that run one test against many faults
    should compile once and use :func:`repro.sim.campaign.run_campaign`
    instead of calling this per fault.

    Parameters
    ----------
    test:
        The March algorithm.
    ram:
        Any front-end exposing ``read(addr)``, ``write(addr, value)``,
        ``n`` and ``m`` (single-port, or a multi-port used sequentially).
        Front-ends with an ``apply_stream`` bulk entry point get the
        compiled replay; anything else falls back to the interpreted
        walk automatically.
    backgrounds:
        Data backgrounds to run under.  Default: ``[0]`` for a BOM,
        :func:`word_backgrounds` for a WOM.
    stop_on_first_failure:
        Return at the first mismatch (test time then reflects
        abort-on-fail BIST); default runs to completion.
    compiled:
        Use the compile-and-replay path (default).  ``False`` forces the
        legacy interpreted walk.

    >>> from repro.memory import SinglePortRAM
    >>> from repro.march.library import MATS_PLUS
    >>> run_march(MATS_PLUS, SinglePortRAM(16)).passed
    True
    """
    if compiled and hasattr(ram, "apply_stream"):
        from repro.sim.compilers import cached_march_stream
        from repro.sim.replay import replay_march

        stream = cached_march_stream(test, ram.n, ram.m,
                                     backgrounds=backgrounds)
        return replay_march(stream, ram,
                            stop_on_first_failure=stop_on_first_failure)
    return run_march_interpreted(test, ram, backgrounds=backgrounds,
                                 stop_on_first_failure=stop_on_first_failure)


def run_march_interpreted(test: MarchTest, ram,
                          backgrounds: list[int] | None = None,
                          stop_on_first_failure: bool = False) -> MarchResult:
    """The original per-operation interpreted March walk.

    Kept as the reference implementation the compiled path is
    equivalence-tested against (``tests/sim/test_equivalence.py``) and as
    the baseline of ``benchmarks/bench_campaign_engine.py``.

    >>> from repro.memory import SinglePortRAM
    >>> from repro.march.library import MATS_PLUS
    >>> run_march_interpreted(MATS_PLUS, SinglePortRAM(16)).passed
    True
    """
    mask = (1 << ram.m) - 1
    if backgrounds is None:
        backgrounds = [0] if ram.m == 1 else word_backgrounds(ram.m)
    result = MarchResult()
    for background in backgrounds:
        if not 0 <= background <= mask:
            raise ValueError(
                f"background {background:#x} does not fit {ram.m}-bit words"
            )
        for element_index, element in enumerate(test.elements):
            if isinstance(element, MarchDelay):
                ram.idle(element.cycles)
                continue
            for addr in element.addresses(ram.n):
                for op in element.ops:
                    value = background if op.data == 0 else background ^ mask
                    if op.kind == "w":
                        ram.write(addr, value)
                        result.operations += 1
                    else:
                        actual = ram.read(addr)
                        result.operations += 1
                        if actual != value:
                            result.passed = False
                            result.failures.append(
                                (background, element_index, addr, value, actual)
                            )
                            if stop_on_first_failure:
                                return result
    return result
