"""Parser/formatter for the formal March notation of van de Goor [1].

Grammar (whitespace-insensitive)::

    march    := "{" element (";" element)* "}"
    element  := order "(" op ("," op)* ")" | delay
    order    := "⇑" | "⇓" | "c" | "u" | "d" | "a" | "↑" | "↓"
    op       := ("r" | "w") ("0" | "1")
    delay    := "D" digits            -- idle cycles (retention pause)

Both the paper's Unicode arrows and plain-ASCII aliases are accepted; ops
may also be juxtaposed without commas (the paper writes ``(r0w1)``).

>>> test = parse_march("{c(w0); ⇑(r0w1); ⇓(r1w0)}", name="MATS+")
>>> test.ops_per_cell
5
>>> format_march(test)
'{c(w0); ⇑(r0,w1); ⇓(r1,w0)}'
"""

from __future__ import annotations

import re

from repro.march.model import MarchDelay, MarchElement, MarchOperation, MarchTest

__all__ = ["parse_march", "format_march", "MarchParseError"]

_DELAY_RE = re.compile(r"^\s*D\s*(?P<cycles>\d+)\s*$")


class MarchParseError(ValueError):
    """Raised when a March notation string cannot be parsed."""


_ORDER_SYMBOLS = {
    "⇑": "up",
    "↑": "up",
    "u": "up",
    "⇓": "down",
    "↓": "down",
    "d": "down",
    "c": "any",
    "a": "any",
}

_ELEMENT_RE = re.compile(r"^\s*(?P<order>[⇑⇓↑↓udca])\s*\(\s*(?P<ops>[^)]*)\)\s*$")
_OP_RE = re.compile(r"([rw])\s*([01])")


def parse_march(text: str, name: str = "unnamed") -> MarchTest:
    """Parse a March algorithm from its formal notation.

    >>> parse_march("{u(w0)}").elements[0].order
    'up'
    """
    text = text.strip()
    if not (text.startswith("{") and text.endswith("}")):
        raise MarchParseError(f"March notation must be brace-wrapped: {text!r}")
    body = text[1:-1].strip()
    if not body:
        raise MarchParseError("empty March test")
    elements = []
    for chunk in body.split(";"):
        delay_match = _DELAY_RE.match(chunk)
        if delay_match is not None:
            elements.append(MarchDelay(int(delay_match.group("cycles"))))
            continue
        match = _ELEMENT_RE.match(chunk)
        if match is None:
            raise MarchParseError(f"cannot parse March element {chunk.strip()!r}")
        order = _ORDER_SYMBOLS[match.group("order")]
        ops_text = match.group("ops").strip()
        ops = _parse_ops(ops_text, chunk)
        elements.append(MarchElement(order, ops))
    return MarchTest(name=name, elements=tuple(elements))


def _parse_ops(ops_text: str, context: str) -> tuple[MarchOperation, ...]:
    if not ops_text:
        raise MarchParseError(f"element {context.strip()!r} has no operations")
    # Strip separators, then verify the remaining text is exactly a run of
    # r/w-digit pairs (rejects garbage like "x0" or dangling characters).
    cleaned = re.sub(r"[\s,]+", "", ops_text)
    matched = "".join(m.group(0) for m in _OP_RE.finditer(cleaned))
    if matched != cleaned:
        raise MarchParseError(
            f"unrecognized operation text {ops_text!r} in {context.strip()!r}"
        )
    return tuple(
        MarchOperation(kind, int(data)) for kind, data in _OP_RE.findall(cleaned)
    )


def format_march(test: MarchTest) -> str:
    """Canonical Unicode notation for a March test.

    >>> from repro.march.library import MATS
    >>> format_march(MATS)
    '{c(w0); c(r0,w1); c(r1)}'
    """
    return str(test)
