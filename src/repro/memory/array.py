"""Raw memory-cell storage.

:class:`MemoryArray` is the physical cell matrix: ``n`` cells of ``m`` bits
each, with *no* decoder, ports, faults or accounting -- those layers wrap it.
Cell values are ints in ``range(2**m)``; for a bit-oriented memory (the
paper's BOM) ``m == 1`` and values are 0/1, for a word-oriented memory (WOM)
``m > 1`` and a cell value is a GF(2^m) element in the word encoding used by
:mod:`repro.gf2m`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["MemoryArray"]


class MemoryArray:
    """``n`` cells of ``m`` bits.

    Parameters
    ----------
    n:
        Number of cells (>= 1).
    m:
        Bits per cell (>= 1).  ``m == 1`` models a bit-oriented memory.
    fill:
        Initial value for every cell (default 0).

    Examples
    --------
    >>> array = MemoryArray(8, m=4, fill=0xF)
    >>> array.read(3)
    15
    >>> array.write(3, 0b0110)
    >>> array.read(3)
    6
    """

    __slots__ = ("_n", "_m", "_mask", "_cells")

    def __init__(self, n: int, m: int = 1, fill: int = 0):
        if n < 1:
            raise ValueError(f"memory needs at least one cell, got n={n}")
        if m < 1:
            raise ValueError(f"cell width must be >= 1 bit, got m={m}")
        self._n = n
        self._m = m
        self._mask = (1 << m) - 1
        self._check_value(fill)
        self._cells = [fill] * n

    # -- geometry --------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of cells."""
        return self._n

    @property
    def m(self) -> int:
        """Bits per cell."""
        return self._m

    @property
    def is_bit_oriented(self) -> bool:
        """True for a BOM (m == 1)."""
        return self._m == 1

    @property
    def capacity_bits(self) -> int:
        """Total storage in bits, ``n * m``."""
        return self._n * self._m

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        kind = "BOM" if self.is_bit_oriented else f"WOM(m={self._m})"
        return f"MemoryArray(n={self._n}, {kind})"

    # -- validation ------------------------------------------------------------

    def _check_cell(self, cell: int) -> None:
        # Fast path first: an exact int in range (the class test is much
        # cheaper than two isinstance calls and excludes bool).  The slow
        # path preserves the original semantics for everything else,
        # including int subclasses.
        if cell.__class__ is int and 0 <= cell < self._n:
            return
        if not isinstance(cell, int) or isinstance(cell, bool):
            raise TypeError(f"cell index must be int, got {type(cell).__name__}")
        if not 0 <= cell < self._n:
            raise IndexError(f"cell {cell} out of range [0, {self._n})")

    def _check_value(self, value: int) -> None:
        if value.__class__ is int and 0 <= value <= self._mask:
            return
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"cell value must be int, got {type(value).__name__}")
        if not 0 <= value <= self._mask:
            raise ValueError(
                f"value {value} does not fit in {self._m}-bit cell "
                f"(max {self._mask})"
            )

    # -- access ----------------------------------------------------------------

    def read(self, cell: int) -> int:
        """Raw read of a physical cell."""
        self._check_cell(cell)
        return self._cells[cell]

    def write(self, cell: int, value: int) -> None:
        """Raw write of a physical cell."""
        self._check_cell(cell)
        self._check_value(value)
        self._cells[cell] = value

    def read_bit(self, cell: int, bit: int) -> int:
        """Read one bit of a cell (used by intra-word fault models).

        >>> array = MemoryArray(2, m=4, fill=0b1010)
        >>> array.read_bit(0, 1)
        1
        """
        self._check_cell(cell)
        if not 0 <= bit < self._m:
            raise IndexError(f"bit {bit} out of range for {self._m}-bit cell")
        return (self._cells[cell] >> bit) & 1

    def write_bit(self, cell: int, bit: int, value: int) -> None:
        """Write one bit of a cell, leaving the others untouched."""
        self._check_cell(cell)
        if not 0 <= bit < self._m:
            raise IndexError(f"bit {bit} out of range for {self._m}-bit cell")
        if value not in (0, 1):
            raise ValueError(f"bit value must be 0/1, got {value!r}")
        if value:
            self._cells[cell] |= 1 << bit
        else:
            self._cells[cell] &= ~(1 << bit)

    # -- bulk ------------------------------------------------------------------

    def fill(self, value: int) -> None:
        """Set every cell to ``value``."""
        self._check_value(value)
        for i in range(self._n):
            self._cells[i] = value

    def load(self, values: Iterable[int]) -> None:
        """Replace the whole contents; must supply exactly ``n`` values."""
        values = list(values)
        if len(values) != self._n:
            raise ValueError(
                f"load needs exactly {self._n} values, got {len(values)}"
            )
        for v in values:
            self._check_value(v)
        self._cells = values

    def dump(self) -> list[int]:
        """Snapshot of the whole contents (a copy)."""
        return list(self._cells)

    def __iter__(self) -> Iterator[int]:
        return iter(self._cells)

    def copy(self) -> MemoryArray:
        """Independent deep copy."""
        clone = MemoryArray(self._n, self._m)
        clone._cells = list(self._cells)
        return clone
