"""Operation traces for memory accesses.

A trace records every port operation with its cycle stamp.  Traces back the
figures that show test data backgrounds evolving in the array, and the
operation-count accounting behind the paper's 3n / 2n complexity claims.
Tracing is off by default (RAM front-ends take ``trace=True``) so fault
simulation campaigns stay fast.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

__all__ = ["Operation", "OperationTrace"]


@dataclass(frozen=True)
class Operation:
    """One memory operation as seen at a port.

    Attributes
    ----------
    cycle:
        Memory cycle in which the operation completed.
    port:
        Port index (0 for single-port RAM).
    kind:
        ``"r"`` or ``"w"``.
    addr:
        Logical address presented to the decoder.
    value:
        Data read or written.
    """

    cycle: int
    port: int
    kind: str
    addr: int
    value: int

    def __str__(self) -> str:
        return f"@{self.cycle} P{self.port} {self.kind}{self.value}[{self.addr}]"


class OperationTrace:
    """An append-only list of :class:`Operation` with query helpers.

    >>> trace = OperationTrace()
    >>> trace.record(Operation(0, 0, "w", 3, 1))
    >>> trace.record(Operation(1, 0, "r", 3, 1))
    >>> len(trace), trace.reads, trace.writes
    (2, 1, 1)
    """

    def __init__(self) -> None:
        self._ops: list[Operation] = []

    def record(self, op: Operation) -> None:
        """Append one operation."""
        if op.kind not in ("r", "w"):
            raise ValueError(f"operation kind must be 'r' or 'w', got {op.kind!r}")
        self._ops.append(op)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __getitem__(self, index: int) -> Operation:
        return self._ops[index]

    @property
    def reads(self) -> int:
        """Number of read operations."""
        return sum(1 for op in self._ops if op.kind == "r")

    @property
    def writes(self) -> int:
        """Number of write operations."""
        return sum(1 for op in self._ops if op.kind == "w")

    @property
    def cycles(self) -> int:
        """Number of distinct cycles covered by the trace."""
        return len({op.cycle for op in self._ops})

    def for_address(self, addr: int) -> list[Operation]:
        """All operations touching a logical address, in order."""
        return [op for op in self._ops if op.addr == addr]

    def for_port(self, port: int) -> list[Operation]:
        """All operations issued on one port, in order."""
        return [op for op in self._ops if op.port == port]

    def clear(self) -> None:
        """Drop all recorded operations."""
        self._ops.clear()

    def __repr__(self) -> str:
        return f"OperationTrace({len(self._ops)} ops, {self.cycles} cycles)"
