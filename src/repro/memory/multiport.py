"""Multi-port RAM front-ends.

A multi-port RAM performs one operation *per port* in a single memory cycle.
The paper's dual-port π-test (Figure 2) exploits this: the two reads of a
sub-iteration issue simultaneously on the two ports, cutting the iteration
from 3n cycles to 2n.  The "QuadPort DSE family" mentioned in §4 is modelled
by the 4-port variant.

Conflict semantics (per cycle):

* several reads of the same cell -- fine, all see the stored value;
* read + write of the same cell -- the read returns the *old* value
  (read-before-write, the common dual-port SRAM discipline);
* two writes to the same cell -- :class:`PortConflictError`: the result is
  undefined on real silicon, so tests must never do it;
* at most one operation per port per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.behavior import CellBehavior, TransparentBehavior
from repro.memory.decoder import AddressDecoder
from repro.memory.ram import RamStats
from repro.memory.array import MemoryArray
from repro.memory.trace import Operation, OperationTrace

__all__ = ["PortOp", "PortConflictError", "MultiPortRAM", "DualPortRAM", "QuadPortRAM"]


class PortConflictError(Exception):
    """Raised when a cycle's port operations have undefined semantics."""


@dataclass(frozen=True)
class PortOp:
    """One port operation inside a cycle.

    ``kind`` is ``"r"`` or ``"w"``; ``value`` is required for writes and
    must be None for reads.
    """

    port: int
    kind: str
    addr: int
    value: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("r", "w"):
            raise ValueError(f"kind must be 'r' or 'w', got {self.kind!r}")
        if self.kind == "w" and self.value is None:
            raise ValueError("write operations need a value")
        if self.kind == "r" and self.value is not None:
            raise ValueError("read operations must not carry a value")


class MultiPortRAM:
    """RAM with ``ports`` independent ports (see module docstring).

    Examples
    --------
    >>> ram = MultiPortRAM(8, ports=2)
    >>> ram.cycle([PortOp(0, "w", 3, 1)])
    {}
    >>> ram.cycle([PortOp(0, "r", 3), PortOp(1, "r", 3)])
    {0: 1, 1: 1}
    >>> ram.stats.cycles
    2
    """

    def __init__(self, n: int, m: int = 1, ports: int = 2,
                 decoder: AddressDecoder | None = None,
                 behavior: CellBehavior | None = None,
                 trace: bool = False,
                 wired: str = "and"):
        if ports < 1:
            raise ValueError(f"need at least one port, got {ports}")
        if wired not in ("and", "or"):
            raise ValueError(f"wired rule must be 'and' or 'or', got {wired!r}")
        self._array = MemoryArray(n, m)
        self._decoder = decoder if decoder is not None else AddressDecoder(n)
        if self._decoder.n != n:
            raise ValueError(
                f"decoder covers {self._decoder.n} addresses, RAM has {n}"
            )
        self._behavior: CellBehavior = (
            behavior if behavior is not None else TransparentBehavior()
        )
        self._ports = ports
        self._trace = OperationTrace() if trace else None
        self._wired = wired
        self._sense = [0] * ports  # per-port sense amplifiers
        self.stats = RamStats()

    # -- geometry / plumbing ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of addresses."""
        return self._array.n

    @property
    def m(self) -> int:
        """Bits per cell."""
        return self._array.m

    @property
    def ports(self) -> int:
        """Number of independent ports."""
        return self._ports

    @property
    def array(self) -> MemoryArray:
        """The underlying physical cell array."""
        return self._array

    @property
    def decoder(self) -> AddressDecoder:
        """The address decoder stage (shared by all ports)."""
        return self._decoder

    @property
    def trace(self) -> OperationTrace | None:
        """The operation trace, or None when tracing is disabled."""
        return self._trace

    def attach_behavior(self, behavior: CellBehavior) -> None:
        """Swap in new cell semantics (e.g. a fault injector)."""
        self._behavior = behavior

    def detach_behavior(self) -> None:
        """Restore perfect-memory semantics."""
        self._behavior = TransparentBehavior()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, m={self.m}, ports={self._ports})"

    # -- cycle execution ---------------------------------------------------------

    def cycle(self, ops: list[PortOp]) -> dict[int, int]:
        """Execute one memory cycle with up to one operation per port.

        Returns ``{port: value}`` for the read operations.  All reads see
        the state *before* any write of the same cycle commits.
        """
        self._validate_cycle(ops)
        time = self.stats.cycles
        results: dict[int, int] = {}
        # Phase 1: all reads sense the pre-cycle state.
        for op in ops:
            if op.kind == "r":
                results[op.port] = self._read_internal(op.port, op.addr, time)
                self.stats.reads += 1
        # Phase 2: writes commit.
        for op in ops:
            if op.kind == "w":
                self._write_internal(op.addr, op.value, time)  # type: ignore[arg-type]
                self.stats.writes += 1
        self.stats.cycles += 1
        if self._trace is not None:
            for op in ops:
                value = results[op.port] if op.kind == "r" else op.value
                self._trace.record(
                    Operation(time, op.port, op.kind, op.addr, value)  # type: ignore[arg-type]
                )
        self._behavior.settle(self._array, self.stats.cycles)
        return results

    def _validate_cycle(self, ops: list[PortOp]) -> None:
        time = self.stats.cycles
        if len(ops) > self._ports:
            raise PortConflictError(
                f"cycle {time}: {len(ops)} operations issued on a "
                f"{self._ports}-port RAM"
            )
        seen_ports: set[int] = set()
        write_cells: set[int] = set()
        for op in ops:
            if not 0 <= op.port < self._ports:
                raise PortConflictError(
                    f"cycle {time}: port {op.port} out of range "
                    f"[0, {self._ports})"
                )
            if op.port in seen_ports:
                raise PortConflictError(
                    f"cycle {time}: port {op.port} used twice in one cycle"
                )
            seen_ports.add(op.port)
            if op.kind == "w":
                for cell in self._decoder.map(op.addr):
                    if cell in write_cells:
                        raise PortConflictError(
                            f"cycle {time}: two simultaneous writes touch "
                            f"cell {cell}"
                        )
                    write_cells.add(cell)

    def _read_internal(self, port: int, addr: int, time: int) -> int:
        cells = self._decoder.map(addr)
        if not cells:
            return self._sense[port]
        values = [
            self._behavior.read_cell(self._array, cell, time) for cell in cells
        ]
        value = values[0]
        for v in values[1:]:
            value = (value & v) if self._wired == "and" else (value | v)
        self._sense[port] = value
        return value

    def _write_internal(self, addr: int, value: int, time: int) -> None:
        self._array._check_value(value)
        for cell in self._decoder.map(addr):
            self._behavior.write_cell(self._array, cell, value, time)

    def idle(self, cycles: int) -> None:
        """Let ``cycles`` memory cycles pass without any operation
        (see :meth:`repro.memory.ram.SinglePortRAM.idle`)."""
        if cycles < 0:
            raise ValueError(f"idle cycles must be non-negative, got {cycles}")
        self.stats.cycles += cycles
        self._behavior.settle(self._array, self.stats.cycles)

    def apply_stream(self, ops, tables=(), start: int = 0,
                     end: int | None = None, stop_on_mismatch: bool = False,
                     mismatches: list | None = None,
                     captured: list | None = None) -> int:
        """Bulk-execute compiled operation records, grouped or flat.

        Same contract as :meth:`repro.memory.ram.SinglePortRAM
        .apply_stream`, extended with the cycle-group records of
        :mod:`repro.sim.ir`: a ``"grp"`` marker followed by its member
        records executes as *one* memory cycle -- reads sense the
        pre-cycle state, writes commit afterwards, ``stats.cycles``
        advances once -- exactly as if the equivalent :meth:`cycle` call
        had been issued.  Flat records keep the sequential discipline
        (one full cycle per record on the record's ``port``), which is
        what the single-port test engines use on a multi-port memory.

        Two writes of one group landing on the same physical cell raise
        :class:`PortConflictError` naming the offending cycle index --
        compile-time validation rejects same-*address* conflicts, so a
        replay-time conflict means a faulty decoder aliased two
        addresses (and the campaign engines count it as a detection).

        ``"ra"``/``"wa"`` records select their accumulator with the
        record's sixth slot (see :mod:`repro.sim.ir`); flat single-port
        streams always use accumulator 0.

        >>> ram = DualPortRAM(4)
        >>> ram.apply_stream([("w", 1, 2, 1, None, 0), ("r", 1, 2, None, 1, 0)])
        2
        >>> ram.stats.cycles
        2
        >>> grouped = DualPortRAM(4)
        >>> grouped.apply_stream([("grp", 0, 0, 2, None, 0),
        ...                       ("w", 0, 2, 1, None, 0),
        ...                       ("w", 1, 3, 1, None, 0)])
        2
        >>> grouped.stats.cycles
        1
        """
        if end is None:
            end = len(ops)
        # The loop below inlines cycle()/_read_internal/_write_internal
        # with the per-op attribute traffic hoisted into locals -- the
        # multi-port analogue of SinglePortRAM.apply_stream's hot loop.
        # Any semantic change here must be mirrored in cycle() and in
        # the portable grouped executor (repro.memory.stream_exec); the
        # tests/sim equivalence suite compares all paths op for op.
        stats = self.stats
        trace = self._trace
        behavior = self._behavior
        array = self._array
        sense = self._sense
        decoder_map = self._decoder.map
        # With no decoder overrides installed the mapping is the
        # identity and two distinct addresses can never collide, so the
        # per-cycle conflict re-check is elided: OpStream validation
        # already rejected same-address write pairs at compile time, and
        # the array's own cell check still rejects out-of-range
        # addresses a hand-built record smuggles in.
        overrides = self._decoder._overrides
        ports = self._ports
        wired_and = self._wired == "and"
        read_cell = behavior.read_cell
        write_cell = behavior.write_cell
        settle = behavior.settle
        check_value = array._check_value
        accs: dict[int, int] = {}
        reads = writes = executed = 0
        cycles = stats.cycles
        try:
            index = start
            while index < end:
                record = ops[index]
                kind = record[0]
                if kind == "grp":
                    count = record[3]
                    stop = index + 1 + count
                    if stop > end:
                        raise ValueError(
                            f"op {index}: group announces {count} members "
                            f"but the stream slice ends at {end}"
                        )
                    if count == 1:
                        # A one-member group is exactly one op in one
                        # cycle -- the flat path below handles it.
                        index += 1
                        continue
                    if count > ports:
                        raise PortConflictError(
                            f"cycle {cycles}: {count} operations issued "
                            f"on a {ports}-port RAM"
                        )
                    if overrides:
                        # Faulty decoding can alias two addresses onto
                        # one cell: run the full physical conflict check
                        # (raises PortConflictError naming this cycle).
                        self._validate_group(ops[index + 1:stop], cycles)
                    # Distinct-port discipline is enforced inline below
                    # with a bitmask (phases A and B together visit each
                    # member exactly once), so hand-built record lists
                    # fail as loudly as they do through cycle().
                    seen_ports = 0
                    # Phase A: write values resolve against the
                    # accumulators as of the cycle start ("wa" consumes
                    # its accumulator before this cycle's "ra" reads
                    # contribute).
                    pending_writes = None
                    trace_vals = {} if trace is not None else None
                    for member in range(index + 1, stop):
                        rec = ops[member]
                        rkind = rec[0]
                        if rkind == "w":
                            stored = rec[3]
                        elif rkind == "wa":
                            acc_id = rec[5]
                            stored = accs.get(acc_id, 0) ^ rec[3]
                            accs[acc_id] = 0
                        else:
                            continue
                        port = rec[1]
                        if not 0 <= port < ports:
                            raise PortConflictError(
                                f"cycle {cycles}: port {port} out of "
                                f"range [0, {ports})"
                            )
                        bit = 1 << port
                        if seen_ports & bit:
                            raise PortConflictError(
                                f"cycle {cycles}: port {port} used twice "
                                f"in one cycle"
                            )
                        seen_ports |= bit
                        if pending_writes is None:
                            pending_writes = [(rec[2], stored)]
                        else:
                            # Same-address double writes are rejected at
                            # stream construction, but hand-built record
                            # lists bypass that -- keep the undefined-
                            # silicon contract loud.  (With overrides
                            # installed _validate_group already did the
                            # stronger physical-cell check.)
                            if not overrides:
                                for addr, _stored in pending_writes:
                                    if addr == rec[2]:
                                        raise PortConflictError(
                                            f"cycle {cycles}: two "
                                            f"simultaneous writes touch "
                                            f"cell {addr}"
                                        )
                            pending_writes.append((rec[2], stored))
                        if trace_vals is not None:
                            trace_vals[member] = stored
                    # Phase B: all reads sense the pre-cycle state;
                    # recurrence reads accumulate, checked reads compare.
                    # A memory cycle is atomic, so a detected mismatch
                    # does not abandon it: the remaining reads still
                    # sense and the writes still commit (exactly what
                    # the cycle()-based generic executor does) -- only
                    # *after* the cycle does the early abort fire.
                    aborted = False
                    for member in range(index + 1, stop):
                        rec = ops[member]
                        rkind = rec[0]
                        if rkind == "w" or rkind == "wa":
                            continue
                        if rkind != "r" and rkind != "s" and rkind != "ra":
                            raise ValueError(
                                f"cycle {cycles}: {rkind!r} records cannot "
                                f"appear inside a cycle group"
                            )
                        port = rec[1]
                        if not 0 <= port < ports:
                            raise PortConflictError(
                                f"cycle {cycles}: port {port} out of "
                                f"range [0, {ports})"
                            )
                        bit = 1 << port
                        if seen_ports & bit:
                            raise PortConflictError(
                                f"cycle {cycles}: port {port} used twice "
                                f"in one cycle"
                            )
                        seen_ports |= bit
                        addr = rec[2]
                        if not overrides:
                            actual = read_cell(array, addr, cycles)
                            sense[port] = actual
                        else:
                            cells = decoder_map(addr)
                            if not cells:
                                actual = sense[port]
                            else:
                                actual = read_cell(array, cells[0], cycles)
                                for cell in cells[1:]:
                                    other = read_cell(array, cell, cycles)
                                    actual = (actual & other) if wired_and \
                                        else (actual | other)
                                sense[port] = actual
                        reads += 1
                        if trace_vals is not None:
                            trace_vals[member] = actual
                        if aborted:
                            continue  # detection decided; senses only
                        if rkind == "ra":
                            actual ^= rec[4]  # decode the data inversion
                            if actual:
                                table = rec[3]
                                acc_id = rec[5]
                                accs[acc_id] = accs.get(acc_id, 0) ^ (
                                    actual if table is None
                                    else tables[table][actual]
                                )
                            continue
                        if rkind == "s" and captured is not None:
                            captured.append(actual)
                        if actual != rec[4]:
                            if mismatches is not None:
                                mismatches.append((member, actual))
                            if stop_on_mismatch:
                                aborted = True
                    # Phase C: writes commit.
                    if pending_writes is not None:
                        for addr, stored in pending_writes:
                            check_value(stored)
                            if not overrides:
                                write_cell(array, addr, stored, cycles)
                            else:
                                for cell in decoder_map(addr):
                                    write_cell(array, cell, stored, cycles)
                            writes += 1
                    if trace_vals is not None:
                        for member in range(index + 1, stop):
                            rec = ops[member]
                            op_kind = "w" if rec[0] in ("w", "wa") else "r"
                            trace.record(Operation(
                                cycles, rec[1], op_kind, rec[2],
                                trace_vals.get(member),
                            ))
                    cycles += 1
                    settle(array, cycles)
                    executed += count
                    if aborted:
                        return executed
                    index = stop
                    continue
                # Flat record: one full cycle, same semantics as the
                # read()/write()/idle() convenience calls.
                port, addr, value, expected, idle = record[1:6]
                if kind == "i":
                    cycles += idle
                    settle(array, cycles)
                    index += 1
                    continue
                if not 0 <= port < ports:
                    raise PortConflictError(
                        f"cycle {cycles}: port {port} out of range "
                        f"[0, {ports})"
                    )
                if kind == "w" or kind == "wa":
                    if kind == "wa":
                        value = accs.get(idle, 0) ^ value
                        accs[idle] = 0
                    check_value(value)
                    if not overrides:
                        write_cell(array, addr, value, cycles)
                    else:
                        for cell in decoder_map(addr):
                            write_cell(array, cell, value, cycles)
                    writes += 1
                    cycles += 1
                    if trace is not None:
                        trace.record(Operation(cycles - 1, port, "w", addr,
                                               value))
                    settle(array, cycles)
                    executed += 1
                elif kind == "r" or kind == "s" or kind == "ra":
                    if not overrides:
                        actual = read_cell(array, addr, cycles)
                        sense[port] = actual
                    else:
                        cells = decoder_map(addr)
                        if not cells:
                            actual = sense[port]
                        else:
                            actual = read_cell(array, cells[0], cycles)
                            for cell in cells[1:]:
                                other = read_cell(array, cell, cycles)
                                actual = (actual & other) if wired_and \
                                    else (actual | other)
                            sense[port] = actual
                    reads += 1
                    cycles += 1
                    if trace is not None:
                        trace.record(Operation(cycles - 1, port, "r", addr,
                                               actual))
                    settle(array, cycles)
                    executed += 1
                    if kind == "ra":
                        actual ^= expected  # decode the data inversion
                        if actual:
                            accs[idle] = accs.get(idle, 0) ^ (
                                actual if value is None
                                else tables[value][actual]
                            )
                    else:
                        if kind == "s" and captured is not None:
                            captured.append(actual)
                        if actual != expected:
                            if mismatches is not None:
                                mismatches.append((index, actual))
                            if stop_on_mismatch:
                                return executed
                else:
                    raise ValueError(f"unknown op kind {kind!r}")
                index += 1
        finally:
            stats.reads += reads
            stats.writes += writes
            stats.cycles = cycles
        return executed

    def _validate_group(self, group, time: int) -> None:
        """Replay-time conflict checks for one cycle group's records.

        Mirrors :meth:`_validate_cycle` over raw IR records; the message
        names the offending memory cycle so campaign logs can point at
        the exact step.  Structural rules (member kinds, count vs ports)
        are enforced at stream construction by
        :class:`repro.sim.ir.OpStream`; this re-checks the parts a
        faulty decoder can change plus the cheap port rules, so
        hand-built record lists fail loudly too.
        """
        if len(group) > self._ports:
            raise PortConflictError(
                f"cycle {time}: {len(group)} operations issued on a "
                f"{self._ports}-port RAM"
            )
        seen_ports: set[int] = set()
        write_cells: set[int] = set()
        for rec in group:
            kind, port = rec[0], rec[1]
            if kind not in ("w", "r", "s", "ra", "wa"):
                raise ValueError(
                    f"cycle {time}: {kind!r} records cannot appear inside "
                    f"a cycle group"
                )
            if not 0 <= port < self._ports:
                raise PortConflictError(
                    f"cycle {time}: port {port} out of range "
                    f"[0, {self._ports})"
                )
            if port in seen_ports:
                raise PortConflictError(
                    f"cycle {time}: port {port} used twice in one cycle"
                )
            seen_ports.add(port)
            if kind in ("w", "wa"):
                for cell in self._decoder.map(rec[2]):
                    if cell in write_cells:
                        raise PortConflictError(
                            f"cycle {time}: two simultaneous writes touch "
                            f"cell {cell}"
                        )
                    write_cells.add(cell)

    # -- sequential convenience (each call = one full cycle) ---------------------

    def read(self, addr: int, port: int = 0) -> int:
        """Single read occupying a whole cycle."""
        return self.cycle([PortOp(port, "r", addr)])[port]

    def write(self, addr: int, value: int, port: int = 0) -> None:
        """Single write occupying a whole cycle."""
        self.cycle([PortOp(port, "w", addr, value)])

    def fill(self, value: int) -> None:
        """Direct (un-counted, fault-free) initialization of all cells."""
        self._array.fill(value)

    def dump(self) -> list[int]:
        """Snapshot of physical cell contents (bypasses faults)."""
        return self._array.dump()


class DualPortRAM(MultiPortRAM):
    """Two-port RAM (the paper's 2P case, Figure 2).

    >>> ram = DualPortRAM(8)
    >>> ram.ports
    2
    """

    def __init__(self, n: int, m: int = 1, **kwargs):
        super().__init__(n, m, ports=2, **kwargs)


class QuadPortRAM(MultiPortRAM):
    """Four-port RAM modelling the paper's "QuadPort DSE family".

    >>> QuadPortRAM(8).ports
    4
    """

    def __init__(self, n: int, m: int = 1, **kwargs):
        super().__init__(n, m, ports=4, **kwargs)
