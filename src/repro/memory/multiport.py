"""Multi-port RAM front-ends.

A multi-port RAM performs one operation *per port* in a single memory cycle.
The paper's dual-port π-test (Figure 2) exploits this: the two reads of a
sub-iteration issue simultaneously on the two ports, cutting the iteration
from 3n cycles to 2n.  The "QuadPort DSE family" mentioned in §4 is modelled
by the 4-port variant.

Conflict semantics (per cycle):

* several reads of the same cell -- fine, all see the stored value;
* read + write of the same cell -- the read returns the *old* value
  (read-before-write, the common dual-port SRAM discipline);
* two writes to the same cell -- :class:`PortConflictError`: the result is
  undefined on real silicon, so tests must never do it;
* at most one operation per port per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.behavior import CellBehavior, TransparentBehavior
from repro.memory.decoder import AddressDecoder
from repro.memory.ram import RamStats
from repro.memory.array import MemoryArray
from repro.memory.stream_exec import apply_stream_generic
from repro.memory.trace import Operation, OperationTrace

__all__ = ["PortOp", "PortConflictError", "MultiPortRAM", "DualPortRAM", "QuadPortRAM"]


class PortConflictError(Exception):
    """Raised when a cycle's port operations have undefined semantics."""


@dataclass(frozen=True)
class PortOp:
    """One port operation inside a cycle.

    ``kind`` is ``"r"`` or ``"w"``; ``value`` is required for writes and
    must be None for reads.
    """

    port: int
    kind: str
    addr: int
    value: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("r", "w"):
            raise ValueError(f"kind must be 'r' or 'w', got {self.kind!r}")
        if self.kind == "w" and self.value is None:
            raise ValueError("write operations need a value")
        if self.kind == "r" and self.value is not None:
            raise ValueError("read operations must not carry a value")


class MultiPortRAM:
    """RAM with ``ports`` independent ports (see module docstring).

    Examples
    --------
    >>> ram = MultiPortRAM(8, ports=2)
    >>> ram.cycle([PortOp(0, "w", 3, 1)])
    {}
    >>> ram.cycle([PortOp(0, "r", 3), PortOp(1, "r", 3)])
    {0: 1, 1: 1}
    >>> ram.stats.cycles
    2
    """

    def __init__(self, n: int, m: int = 1, ports: int = 2,
                 decoder: AddressDecoder | None = None,
                 behavior: CellBehavior | None = None,
                 trace: bool = False,
                 wired: str = "and"):
        if ports < 1:
            raise ValueError(f"need at least one port, got {ports}")
        if wired not in ("and", "or"):
            raise ValueError(f"wired rule must be 'and' or 'or', got {wired!r}")
        self._array = MemoryArray(n, m)
        self._decoder = decoder if decoder is not None else AddressDecoder(n)
        if self._decoder.n != n:
            raise ValueError(
                f"decoder covers {self._decoder.n} addresses, RAM has {n}"
            )
        self._behavior: CellBehavior = (
            behavior if behavior is not None else TransparentBehavior()
        )
        self._ports = ports
        self._trace = OperationTrace() if trace else None
        self._wired = wired
        self._sense = [0] * ports  # per-port sense amplifiers
        self.stats = RamStats()

    # -- geometry / plumbing ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of addresses."""
        return self._array.n

    @property
    def m(self) -> int:
        """Bits per cell."""
        return self._array.m

    @property
    def ports(self) -> int:
        """Number of independent ports."""
        return self._ports

    @property
    def array(self) -> MemoryArray:
        """The underlying physical cell array."""
        return self._array

    @property
    def decoder(self) -> AddressDecoder:
        """The address decoder stage (shared by all ports)."""
        return self._decoder

    @property
    def trace(self) -> OperationTrace | None:
        """The operation trace, or None when tracing is disabled."""
        return self._trace

    def attach_behavior(self, behavior: CellBehavior) -> None:
        """Swap in new cell semantics (e.g. a fault injector)."""
        self._behavior = behavior

    def detach_behavior(self) -> None:
        """Restore perfect-memory semantics."""
        self._behavior = TransparentBehavior()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, m={self.m}, ports={self._ports})"

    # -- cycle execution ---------------------------------------------------------

    def cycle(self, ops: list[PortOp]) -> dict[int, int]:
        """Execute one memory cycle with up to one operation per port.

        Returns ``{port: value}`` for the read operations.  All reads see
        the state *before* any write of the same cycle commits.
        """
        self._validate_cycle(ops)
        time = self.stats.cycles
        results: dict[int, int] = {}
        # Phase 1: all reads sense the pre-cycle state.
        for op in ops:
            if op.kind == "r":
                results[op.port] = self._read_internal(op.port, op.addr, time)
                self.stats.reads += 1
        # Phase 2: writes commit.
        for op in ops:
            if op.kind == "w":
                self._write_internal(op.addr, op.value, time)  # type: ignore[arg-type]
                self.stats.writes += 1
        self.stats.cycles += 1
        if self._trace is not None:
            for op in ops:
                value = results[op.port] if op.kind == "r" else op.value
                self._trace.record(
                    Operation(time, op.port, op.kind, op.addr, value)  # type: ignore[arg-type]
                )
        self._behavior.settle(self._array, self.stats.cycles)
        return results

    def _validate_cycle(self, ops: list[PortOp]) -> None:
        if len(ops) > self._ports:
            raise PortConflictError(
                f"{len(ops)} operations issued on a {self._ports}-port RAM"
            )
        seen_ports: set[int] = set()
        write_cells: set[int] = set()
        for op in ops:
            if not 0 <= op.port < self._ports:
                raise PortConflictError(
                    f"port {op.port} out of range [0, {self._ports})"
                )
            if op.port in seen_ports:
                raise PortConflictError(f"port {op.port} used twice in one cycle")
            seen_ports.add(op.port)
            if op.kind == "w":
                for cell in self._decoder.map(op.addr):
                    if cell in write_cells:
                        raise PortConflictError(
                            f"two simultaneous writes touch cell {cell}"
                        )
                    write_cells.add(cell)

    def _read_internal(self, port: int, addr: int, time: int) -> int:
        cells = self._decoder.map(addr)
        if not cells:
            return self._sense[port]
        values = [
            self._behavior.read_cell(self._array, cell, time) for cell in cells
        ]
        value = values[0]
        for v in values[1:]:
            value = (value & v) if self._wired == "and" else (value | v)
        self._sense[port] = value
        return value

    def _write_internal(self, addr: int, value: int, time: int) -> None:
        self._array._check_value(value)
        for cell in self._decoder.map(addr):
            self._behavior.write_cell(self._array, cell, value, time)

    def idle(self, cycles: int) -> None:
        """Let ``cycles`` memory cycles pass without any operation
        (see :meth:`repro.memory.ram.SinglePortRAM.idle`)."""
        if cycles < 0:
            raise ValueError(f"idle cycles must be non-negative, got {cycles}")
        self.stats.cycles += cycles
        self._behavior.settle(self._array, self.stats.cycles)

    def apply_stream(self, ops, tables=(), start: int = 0,
                     end: int | None = None, stop_on_mismatch: bool = False,
                     mismatches: list | None = None,
                     captured: list | None = None) -> int:
        """Bulk-execute compiled operation records, one op per cycle.

        Same contract as :meth:`repro.memory.ram.SinglePortRAM
        .apply_stream`; each record occupies a full cycle on its ``port``
        (the sequential discipline the single-port test engines use on a
        multi-port memory).  Delegates to :func:`repro.memory.stream_exec
        .apply_stream_generic`, the shared portable executor.

        >>> ram = DualPortRAM(4)
        >>> ram.apply_stream([("w", 1, 2, 1, None, 0), ("r", 1, 2, None, 1, 0)])
        2
        """
        return apply_stream_generic(
            self, ops, tables=tables, start=start, end=end,
            stop_on_mismatch=stop_on_mismatch, mismatches=mismatches,
            captured=captured,
        )

    # -- sequential convenience (each call = one full cycle) ---------------------

    def read(self, addr: int, port: int = 0) -> int:
        """Single read occupying a whole cycle."""
        return self.cycle([PortOp(port, "r", addr)])[port]

    def write(self, addr: int, value: int, port: int = 0) -> None:
        """Single write occupying a whole cycle."""
        self.cycle([PortOp(port, "w", addr, value)])

    def fill(self, value: int) -> None:
        """Direct (un-counted, fault-free) initialization of all cells."""
        self._array.fill(value)

    def dump(self) -> list[int]:
        """Snapshot of physical cell contents (bypasses faults)."""
        return self._array.dump()


class DualPortRAM(MultiPortRAM):
    """Two-port RAM (the paper's 2P case, Figure 2).

    >>> ram = DualPortRAM(8)
    >>> ram.ports
    2
    """

    def __init__(self, n: int, m: int = 1, **kwargs):
        super().__init__(n, m, ports=2, **kwargs)


class QuadPortRAM(MultiPortRAM):
    """Four-port RAM modelling the paper's "QuadPort DSE family".

    >>> QuadPortRAM(8).ports
    4
    """

    def __init__(self, n: int, m: int = 1, **kwargs):
        super().__init__(n, m, ports=4, **kwargs)
