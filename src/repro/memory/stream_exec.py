"""Portable executor for compiled operation records (the repro.sim IR).

One generic loop over the ``(kind, port, addr, value, expected, idle)``
records, driving any RAM front-end through its public
``read``/``write``/``idle`` API.  :class:`~repro.memory.multiport
.MultiPortRAM` delegates its ``apply_stream`` here, and any duck-typed
front-end can do the same; :class:`~repro.memory.ram.SinglePortRAM`
carries its own inlined copy of these semantics purely for speed (the
campaign hot loop) -- the two are kept in lock-step by the equivalence
suite in ``tests/sim``.
"""

from __future__ import annotations

from inspect import signature

__all__ = ["apply_stream_generic"]


def _accepts_port(method) -> bool:
    try:
        return "port" in signature(method).parameters
    except (TypeError, ValueError):  # builtins / C accelerators
        return False


def apply_stream_generic(ram, ops, tables=(), start: int = 0,
                         end: int | None = None,
                         stop_on_mismatch: bool = False,
                         mismatches: list | None = None,
                         captured: list | None = None) -> int:
    """Execute op records through ``ram``'s public access methods.

    Same contract as :meth:`repro.memory.ram.SinglePortRAM.apply_stream`
    (see there for the parameters); each record costs one full
    ``read``/``write`` call -- correct for any front-end (with or
    without per-port access methods), just without the single-port fast
    path.
    """
    if end is None:
        end = len(ops)
    ported = _accepts_port(ram.read)
    executed = 0
    acc = 0
    for index in range(start, end):
        kind, port, addr, value, expected, idle = ops[index]
        if kind == "w":
            if ported:
                ram.write(addr, value, port=port)
            else:
                ram.write(addr, value)
            executed += 1
        elif kind == "r" or kind == "s" or kind == "ra":
            actual = ram.read(addr, port=port) if ported else ram.read(addr)
            executed += 1
            if kind == "ra":
                actual ^= expected  # decode the stored-data inversion
                if actual:
                    acc ^= actual if value is None else tables[value][actual]
                continue
            if kind == "s" and captured is not None:
                captured.append(actual)
            if actual != expected:
                if mismatches is not None:
                    mismatches.append((index, actual))
                if stop_on_mismatch:
                    return executed
        elif kind == "wa":
            stored = acc ^ value  # encode the stored-data inversion
            if ported:
                ram.write(addr, stored, port=port)
            else:
                ram.write(addr, stored)
            executed += 1
            acc = 0
        elif kind == "i":
            ram.idle(idle)
        else:
            raise ValueError(f"unknown op kind {kind!r}")
    return executed
