"""Portable executor for compiled operation records (the repro.sim IR).

One generic loop over the ``(kind, port, addr, value, expected, idle)``
records, driving any RAM front-end through its public
``read``/``write``/``idle`` API -- plus the cycle-group records of
multi-port streams, executed through the front-end's ``cycle`` entry
point when it has one.  :class:`~repro.memory.multiport.MultiPortRAM`
carries its own inlined grouped executor purely for speed (the
multi-port campaign hot loop), and
:class:`~repro.memory.ram.SinglePortRAM` the flat-stream equivalent;
all three are kept in lock-step by the equivalence suite in
``tests/sim``.

Grouped records on a front-end *without* a ``cycle`` method degrade to
read-before-write sequential execution: all of the group's reads issue
first, then its writes, so data semantics (old-value reads, accumulator
contents, detections) are preserved exactly -- only ``stats.cycles``
inflates to one cycle per operation, because the public per-op API
cannot express simultaneity.  Cycle-accurate accounting needs a
``cycle`` method (the multi-port front-ends have one).
"""

from __future__ import annotations

from inspect import signature

__all__ = ["apply_stream_generic"]


def _accepts_port(method) -> bool:
    try:
        return "port" in signature(method).parameters
    except (TypeError, ValueError):  # builtins / C accelerators
        return False


def _run_group(ram, cycle, group, ported, accs):
    """Execute one cycle group; returns ``[(offset, rec, actual), ...]``
    for the group's read records.

    ``cycle`` is the front-end's cycle method or None.  Writes commit
    after all reads either way; ``"wa"`` stored values are computed from
    the accumulators as of the cycle start (and the consumed
    accumulators reset), matching the native multi-port executor.
    """
    if cycle is not None:
        from repro.memory.multiport import PortOp  # circular-safe: lazy

        port_ops = []
        for rec in group:
            kind = rec[0]
            if kind in ("r", "s", "ra"):
                port_ops.append(PortOp(rec[1], "r", rec[2]))
            elif kind == "w":
                port_ops.append(PortOp(rec[1], "w", rec[2], rec[3]))
            else:  # "wa"
                acc_id = rec[5]
                stored = accs.get(acc_id, 0) ^ rec[3]
                accs[acc_id] = 0
                port_ops.append(PortOp(rec[1], "w", rec[2], stored))
        results = cycle(port_ops)
        return [(offset, rec, results[rec[1]])
                for offset, rec in enumerate(group)
                if rec[0] in ("r", "s", "ra")]
    # Portable fallback: reads first (pre-"cycle" state), then writes.
    reads = []
    for offset, rec in enumerate(group):
        if rec[0] in ("r", "s", "ra"):
            actual = ram.read(rec[2], port=rec[1]) if ported \
                else ram.read(rec[2])
            reads.append((offset, rec, actual))
    for rec in group:
        kind = rec[0]
        if kind == "w":
            stored = rec[3]
        elif kind == "wa":
            acc_id = rec[5]
            stored = accs.get(acc_id, 0) ^ rec[3]
            accs[acc_id] = 0
        else:
            continue
        if ported:
            ram.write(rec[2], stored, port=rec[1])
        else:
            ram.write(rec[2], stored)
    return reads


def apply_stream_generic(ram, ops, tables=(), start: int = 0,
                         end: int | None = None,
                         stop_on_mismatch: bool = False,
                         mismatches: list | None = None,
                         captured: list | None = None) -> int:
    """Execute op records through ``ram``'s public access methods.

    Same contract as :meth:`repro.memory.ram.SinglePortRAM.apply_stream`
    (see there for the parameters); each flat record costs one full
    ``read``/``write`` call -- correct for any front-end (with or
    without per-port access methods), just without the single-port fast
    path.  ``"grp"`` cycle groups execute through ``ram.cycle`` when the
    front-end has one (cycle-accurate), or degrade to reads-then-writes
    per-op calls (see module docstring).
    """
    if end is None:
        end = len(ops)
    ported = _accepts_port(ram.read)
    cycle = getattr(ram, "cycle", None)
    executed = 0
    accs: dict[int, int] = {}
    index = start
    while index < end:
        kind, port, addr, value, expected, idle = ops[index]
        if kind == "grp":
            stop = index + 1 + value
            if stop > end:
                raise ValueError(
                    f"op {index}: group announces {value} members but "
                    f"the stream slice ends at {end}"
                )
            if value == 1:
                # A one-member group is exactly one op in one cycle --
                # the flat handling below is equivalent and cheaper.
                index += 1
                continue
            group = ops[index + 1:stop]
            reads = _run_group(ram, cycle, group, ported, accs)
            executed += len(group)
            base = index + 1
            for offset, rec, actual in reads:
                rkind = rec[0]
                if rkind == "ra":
                    actual ^= rec[4]  # decode the stored-data inversion
                    if actual:
                        table = rec[3]
                        accs[rec[5]] = accs.get(rec[5], 0) ^ (
                            actual if table is None else tables[table][actual]
                        )
                    continue
                if rkind == "s" and captured is not None:
                    captured.append(actual)
                if actual != rec[4]:
                    if mismatches is not None:
                        mismatches.append((base + offset, actual))
                    if stop_on_mismatch:
                        return executed
            index = stop
            continue
        if kind == "w":
            if ported:
                ram.write(addr, value, port=port)
            else:
                ram.write(addr, value)
            executed += 1
        elif kind == "r" or kind == "s" or kind == "ra":
            actual = ram.read(addr, port=port) if ported else ram.read(addr)
            executed += 1
            if kind == "ra":
                actual ^= expected  # decode the stored-data inversion
                if actual:
                    accs[idle] = accs.get(idle, 0) ^ (
                        actual if value is None else tables[value][actual]
                    )
                index += 1
                continue
            if kind == "s" and captured is not None:
                captured.append(actual)
            if actual != expected:
                if mismatches is not None:
                    mismatches.append((index, actual))
                if stop_on_mismatch:
                    return executed
        elif kind == "wa":
            stored = accs.get(idle, 0) ^ value  # encode the inversion
            accs[idle] = 0
            if ported:
                ram.write(addr, stored, port=port)
            else:
                ram.write(addr, stored)
            executed += 1
        elif kind == "i":
            ram.idle(idle)
        else:
            raise ValueError(f"unknown op kind {kind!r}")
        index += 1
    return executed
