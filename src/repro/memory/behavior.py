"""Pluggable cell-access semantics.

The RAM front-ends route every physical-cell access through a
:class:`CellBehavior`.  The default :class:`TransparentBehavior` is a perfect
memory; :class:`repro.faults.injector.FaultInjector` implements the same
interface with fault semantics (stuck-at, coupling, ...), so test engines
run unmodified on healthy and faulty memories alike -- mirroring how a real
March/PRT controller cannot see whether the silicon under it is good.
"""

from __future__ import annotations

from repro.memory.array import MemoryArray

__all__ = ["CellBehavior", "TransparentBehavior"]


class CellBehavior:
    """Interface for cell-access semantics.

    Subclasses override any of the three hooks.  ``time`` is the RAM's
    cycle counter at the moment of access (used by data-retention faults).
    """

    def read_cell(self, array: MemoryArray, cell: int, time: int) -> int:
        """Value returned when physical ``cell`` is sensed."""
        raise NotImplementedError

    def write_cell(self, array: MemoryArray, cell: int, value: int,
                   time: int) -> None:
        """Effect of driving ``value`` into physical ``cell``."""
        raise NotImplementedError

    def settle(self, array: MemoryArray, time: int) -> None:
        """Called after each memory cycle completes (state faults settle)."""


class TransparentBehavior(CellBehavior):
    """Perfect memory: reads and writes hit the raw array directly.

    >>> array = MemoryArray(4, m=1)
    >>> behavior = TransparentBehavior()
    >>> behavior.write_cell(array, 2, 1, time=0)
    >>> behavior.read_cell(array, 2, time=1)
    1
    """

    def read_cell(self, array: MemoryArray, cell: int, time: int) -> int:
        return array.read(cell)

    def write_cell(self, array: MemoryArray, cell: int, value: int,
                   time: int) -> None:
        array.write(cell, value)

    def settle(self, array: MemoryArray, time: int) -> None:
        pass
