"""Address decoder model.

In a real RAM the decoder turns a logical address into word-line activations.
Modelling it as an explicit stage lets the fault library inject van de
Goor's address-decoder faults (AFs):

* AF-A -- an address activates *no* cell,
* AF-B -- a cell is activated by *no* address,
* AF-C -- an address activates *multiple* cells,
* AF-D -- a cell is activated by *multiple* addresses.

A healthy decoder is the identity: address ``a`` activates exactly cell
``a``.  Faulty mappings are expressed as overrides: ``addr -> tuple of
physical cells`` (possibly empty).
"""

from __future__ import annotations

__all__ = ["AddressDecoder"]


class AddressDecoder:
    """Maps logical addresses to tuples of activated physical cells.

    Parameters
    ----------
    n:
        Number of addresses (equals the number of cells in a healthy RAM).
    overrides:
        Optional mapping ``address -> tuple(cells)`` replacing the identity
        mapping for specific addresses.

    Examples
    --------
    >>> dec = AddressDecoder(4)
    >>> dec.map(2)
    (2,)
    >>> dec = AddressDecoder(4, overrides={1: (), 2: (2, 3)})
    >>> dec.map(1), dec.map(2)
    ((), (2, 3))
    """

    def __init__(self, n: int, overrides: dict[int, tuple[int, ...]] | None = None):
        if n < 1:
            raise ValueError(f"decoder needs at least one address, got {n}")
        self._n = n
        self._overrides: dict[int, tuple[int, ...]] = {}
        if overrides:
            for addr, cells in overrides.items():
                self.set_override(addr, cells)

    @property
    def n(self) -> int:
        """Number of logical addresses."""
        return self._n

    @property
    def overrides(self) -> dict[int, tuple[int, ...]]:
        """Copy of the active overrides."""
        return dict(self._overrides)

    @property
    def is_healthy(self) -> bool:
        """True when no overrides are installed (identity mapping)."""
        return not self._overrides

    def _check_addr(self, addr: int) -> None:
        if not isinstance(addr, int) or isinstance(addr, bool):
            raise TypeError(f"address must be int, got {type(addr).__name__}")
        if not 0 <= addr < self._n:
            raise IndexError(f"address {addr} out of range [0, {self._n})")

    def map(self, addr: int) -> tuple[int, ...]:
        """Physical cells activated by ``addr`` (may be empty or multiple)."""
        self._check_addr(addr)
        override = self._overrides.get(addr)
        if override is not None:
            return override
        return (addr,)

    def set_override(self, addr: int, cells: tuple[int, ...] | list[int]) -> None:
        """Install a faulty mapping for one address."""
        self._check_addr(addr)
        cells = tuple(cells)
        for cell in cells:
            if not isinstance(cell, int) or isinstance(cell, bool):
                raise TypeError(f"cell must be int, got {type(cell).__name__}")
            if not 0 <= cell < self._n:
                raise IndexError(f"cell {cell} out of range [0, {self._n})")
        if len(set(cells)) != len(cells):
            raise ValueError(f"duplicate cells in override for address {addr}")
        self._overrides[addr] = cells

    def clear_override(self, addr: int) -> None:
        """Restore the identity mapping for one address."""
        self._check_addr(addr)
        self._overrides.pop(addr, None)

    def clear(self) -> None:
        """Restore the identity mapping everywhere."""
        self._overrides.clear()

    def unreached_cells(self) -> set[int]:
        """Cells no address activates (AF-B victims).

        >>> AddressDecoder(3, overrides={1: ()}).unreached_cells()
        {1}
        """
        reached: set[int] = set()
        for addr in range(self._n):
            reached.update(self.map(addr))
        return set(range(self._n)) - reached

    def __repr__(self) -> str:
        status = "healthy" if self.is_healthy else f"{len(self._overrides)} overrides"
        return f"AddressDecoder(n={self._n}, {status})"
