"""Behavioural RAM simulator.

Models the memories the paper tests:

* bit-oriented (BOM, cell width m = 1) and word-oriented (WOM, m > 1)
  arrays -- :class:`repro.memory.array.MemoryArray`,
* an explicit address-decoder stage -- :class:`repro.memory.decoder
  .AddressDecoder` -- so address-decoder faults (AFs) can be injected
  between logical addresses and physical cells,
* single-, dual- and quad-port RAM front-ends with per-cycle conflict
  semantics -- :mod:`repro.memory.ram` and :mod:`repro.memory.multiport`,
* an operation trace and cycle/operation accounting used by the
  time-complexity experiments (claim C4: 3n single-port vs 2n dual-port),
* a bit-plane backend -- :class:`repro.memory.packed.PackedMemoryArray` --
  that replays one compiled stream against hundreds of faulty memory
  copies at once (lane *k* of every word models fault-site *k*), used by
  the batched campaign engine :mod:`repro.sim.batched`.

Fault injection plugs in through the :class:`repro.memory.behavior
.CellBehavior` interface; the perfect memory uses
:class:`repro.memory.behavior.TransparentBehavior`, and
:class:`repro.faults.injector.FaultInjector` substitutes faulty semantics
without the test engines noticing.
"""

from repro.memory.array import MemoryArray
from repro.memory.behavior import CellBehavior, TransparentBehavior
from repro.memory.decoder import AddressDecoder
from repro.memory.packed import LaneFaultModel, PackedMemoryArray
from repro.memory.scrambler import AddressScrambler
from repro.memory.stream_exec import apply_stream_generic
from repro.memory.trace import Operation, OperationTrace
from repro.memory.ram import SinglePortRAM, RamStats
from repro.memory.multiport import (
    DualPortRAM,
    QuadPortRAM,
    MultiPortRAM,
    PortOp,
    PortConflictError,
)

__all__ = [
    "MemoryArray",
    "CellBehavior",
    "TransparentBehavior",
    "AddressDecoder",
    "AddressScrambler",
    "apply_stream_generic",
    "LaneFaultModel",
    "PackedMemoryArray",
    "Operation",
    "OperationTrace",
    "SinglePortRAM",
    "RamStats",
    "DualPortRAM",
    "QuadPortRAM",
    "MultiPortRAM",
    "PortOp",
    "PortConflictError",
]
