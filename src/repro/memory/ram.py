"""Single-port RAM front-end.

Combines the raw :class:`~repro.memory.array.MemoryArray`, an
:class:`~repro.memory.decoder.AddressDecoder`, a pluggable
:class:`~repro.memory.behavior.CellBehavior` (perfect or faulty) and
operation accounting.  One read or write takes one memory cycle -- the unit
in which the paper states its 3n (single-port) and 2n (dual-port) π-test
complexities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.array import MemoryArray
from repro.memory.behavior import CellBehavior, TransparentBehavior
from repro.memory.decoder import AddressDecoder
from repro.memory.trace import Operation, OperationTrace

__all__ = ["SinglePortRAM", "RamStats"]


@dataclass
class RamStats:
    """Operation counters for a RAM front-end.

    ``cycles`` counts memory cycles; for a single-port RAM it equals
    ``reads + writes``, for a multi-port RAM concurrent operations share a
    cycle (which is where the dual-port π-test saves its n cycles).
    """

    reads: int = 0
    writes: int = 0
    cycles: int = 0

    @property
    def operations(self) -> int:
        """Total reads + writes."""
        return self.reads + self.writes

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.cycles = 0


class SinglePortRAM:
    """A single-port RAM: one read *or* write per cycle.

    Parameters
    ----------
    n:
        Number of addresses/cells.
    m:
        Bits per cell (1 = bit-oriented).
    decoder:
        Optional pre-built decoder (shared with fault models); default is a
        healthy identity decoder.
    behavior:
        Cell-access semantics; default perfect memory.
    trace:
        Record an :class:`OperationTrace` when True.
    wired:
        Combining rule when a faulty decoder activates several cells on a
        read: ``"and"`` (default) or ``"or"``.

    Examples
    --------
    >>> ram = SinglePortRAM(8, m=4)
    >>> ram.write(3, 0xA)
    >>> ram.read(3)
    10
    >>> ram.stats.cycles
    2
    """

    def __init__(self, n: int, m: int = 1,
                 decoder: AddressDecoder | None = None,
                 behavior: CellBehavior | None = None,
                 trace: bool = False,
                 wired: str = "and",
                 scrambler=None):
        if wired not in ("and", "or"):
            raise ValueError(f"wired rule must be 'and' or 'or', got {wired!r}")
        self._array = MemoryArray(n, m)
        self._decoder = decoder if decoder is not None else AddressDecoder(n)
        if self._decoder.n != n:
            raise ValueError(
                f"decoder covers {self._decoder.n} addresses, RAM has {n}"
            )
        if scrambler is not None and scrambler.size != n:
            raise ValueError(
                f"scrambler covers {scrambler.size} addresses, RAM has {n}"
            )
        self._scrambler = scrambler
        self._behavior: CellBehavior = (
            behavior if behavior is not None else TransparentBehavior()
        )
        self._trace = OperationTrace() if trace else None
        self._wired = wired
        self._sense = 0  # last value latched by the sense amplifier
        self.stats = RamStats()

    # -- geometry / plumbing ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of addresses."""
        return self._array.n

    @property
    def m(self) -> int:
        """Bits per cell."""
        return self._array.m

    @property
    def array(self) -> MemoryArray:
        """The underlying physical cell array."""
        return self._array

    @property
    def decoder(self) -> AddressDecoder:
        """The address decoder stage."""
        return self._decoder

    @property
    def behavior(self) -> CellBehavior:
        """Current cell-access semantics."""
        return self._behavior

    @property
    def trace(self) -> OperationTrace | None:
        """The operation trace, or None when tracing is disabled."""
        return self._trace

    def attach_behavior(self, behavior: CellBehavior) -> None:
        """Swap in new cell semantics (e.g. a fault injector)."""
        self._behavior = behavior

    def detach_behavior(self) -> None:
        """Restore perfect-memory semantics."""
        self._behavior = TransparentBehavior()

    def __repr__(self) -> str:
        kind = "BOM" if self.m == 1 else f"WOM(m={self.m})"
        return f"SinglePortRAM(n={self.n}, {kind})"

    # -- access ----------------------------------------------------------------

    def read(self, addr: int) -> int:
        """Read logical address ``addr`` (one cycle)."""
        value = self._read_internal(addr)
        self.stats.reads += 1
        self.stats.cycles += 1
        if self._trace is not None:
            self._trace.record(
                Operation(self.stats.cycles - 1, 0, "r", addr, value)
            )
        self._behavior.settle(self._array, self.stats.cycles)
        return value

    def write(self, addr: int, value: int) -> None:
        """Write ``value`` to logical address ``addr`` (one cycle)."""
        self._write_internal(addr, value)
        self.stats.writes += 1
        self.stats.cycles += 1
        if self._trace is not None:
            self._trace.record(
                Operation(self.stats.cycles - 1, 0, "w", addr, value)
            )
        self._behavior.settle(self._array, self.stats.cycles)

    @property
    def scrambler(self):
        """The address scrambler, or None (identity mapping)."""
        return self._scrambler

    def _map_addr(self, addr: int) -> int:
        if self._scrambler is not None:
            return self._scrambler.map(addr)
        return addr

    def _read_internal(self, addr: int) -> int:
        cells = self._decoder.map(self._map_addr(addr))
        if not cells:
            # AF-A: no cell activated; the sense amp keeps its last value.
            return self._sense
        values = [
            self._behavior.read_cell(self._array, cell, self.stats.cycles)
            for cell in cells
        ]
        value = values[0]
        for v in values[1:]:
            value = (value & v) if self._wired == "and" else (value | v)
        self._sense = value
        return value

    def _write_internal(self, addr: int, value: int) -> None:
        self._array._check_value(value)
        for cell in self._decoder.map(self._map_addr(addr)):
            self._behavior.write_cell(self._array, cell, value, self.stats.cycles)

    def idle(self, cycles: int) -> None:
        """Let ``cycles`` memory cycles pass without any operation.

        Models the pause ("delay element") retention tests insert between
        writing and reading: data-retention faults decay during idle time,
        which is measured on the same cycle counter all operations use.
        """
        if cycles < 0:
            raise ValueError(f"idle cycles must be non-negative, got {cycles}")
        self.stats.cycles += cycles
        self._behavior.settle(self._array, self.stats.cycles)

    # -- convenience -----------------------------------------------------------

    def fill(self, value: int) -> None:
        """Direct (un-counted, fault-free) initialization of all cells.

        Test engines must *not* use this -- it models the factory state, not
        a test operation.
        """
        self._array.fill(value)

    def dump(self) -> list[int]:
        """Snapshot of physical cell contents (bypasses faults)."""
        return self._array.dump()
