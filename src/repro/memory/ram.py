"""Single-port RAM front-end.

Combines the raw :class:`~repro.memory.array.MemoryArray`, an
:class:`~repro.memory.decoder.AddressDecoder`, a pluggable
:class:`~repro.memory.behavior.CellBehavior` (perfect or faulty) and
operation accounting.  One read or write takes one memory cycle -- the unit
in which the paper states its 3n (single-port) and 2n (dual-port) π-test
complexities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.array import MemoryArray
from repro.memory.behavior import CellBehavior, TransparentBehavior
from repro.memory.decoder import AddressDecoder
from repro.memory.trace import Operation, OperationTrace

__all__ = ["SinglePortRAM", "RamStats"]


@dataclass
class RamStats:
    """Operation counters for a RAM front-end.

    ``cycles`` counts memory cycles; for a single-port RAM it equals
    ``reads + writes``, for a multi-port RAM concurrent operations share a
    cycle (which is where the dual-port π-test saves its n cycles).
    """

    reads: int = 0
    writes: int = 0
    cycles: int = 0

    @property
    def operations(self) -> int:
        """Total reads + writes."""
        return self.reads + self.writes

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.cycles = 0


class SinglePortRAM:
    """A single-port RAM: one read *or* write per cycle.

    Parameters
    ----------
    n:
        Number of addresses/cells.
    m:
        Bits per cell (1 = bit-oriented).
    decoder:
        Optional pre-built decoder (shared with fault models); default is a
        healthy identity decoder.
    behavior:
        Cell-access semantics; default perfect memory.
    trace:
        Record an :class:`OperationTrace` when True.
    wired:
        Combining rule when a faulty decoder activates several cells on a
        read: ``"and"`` (default) or ``"or"``.

    Examples
    --------
    >>> ram = SinglePortRAM(8, m=4)
    >>> ram.write(3, 0xA)
    >>> ram.read(3)
    10
    >>> ram.stats.cycles
    2
    """

    def __init__(self, n: int, m: int = 1,
                 decoder: AddressDecoder | None = None,
                 behavior: CellBehavior | None = None,
                 trace: bool = False,
                 wired: str = "and",
                 scrambler=None):
        if wired not in ("and", "or"):
            raise ValueError(f"wired rule must be 'and' or 'or', got {wired!r}")
        self._array = MemoryArray(n, m)
        self._decoder = decoder if decoder is not None else AddressDecoder(n)
        if self._decoder.n != n:
            raise ValueError(
                f"decoder covers {self._decoder.n} addresses, RAM has {n}"
            )
        if scrambler is not None and scrambler.size != n:
            raise ValueError(
                f"scrambler covers {scrambler.size} addresses, RAM has {n}"
            )
        self._scrambler = scrambler
        self._behavior: CellBehavior = (
            behavior if behavior is not None else TransparentBehavior()
        )
        self._trace = OperationTrace() if trace else None
        self._wired = wired
        self._sense = 0  # last value latched by the sense amplifier
        self.stats = RamStats()

    # -- geometry / plumbing ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of addresses."""
        return self._array.n

    @property
    def m(self) -> int:
        """Bits per cell."""
        return self._array.m

    @property
    def array(self) -> MemoryArray:
        """The underlying physical cell array."""
        return self._array

    @property
    def decoder(self) -> AddressDecoder:
        """The address decoder stage."""
        return self._decoder

    @property
    def behavior(self) -> CellBehavior:
        """Current cell-access semantics."""
        return self._behavior

    @property
    def trace(self) -> OperationTrace | None:
        """The operation trace, or None when tracing is disabled."""
        return self._trace

    def attach_behavior(self, behavior: CellBehavior) -> None:
        """Swap in new cell semantics (e.g. a fault injector)."""
        self._behavior = behavior

    def detach_behavior(self) -> None:
        """Restore perfect-memory semantics."""
        self._behavior = TransparentBehavior()

    def __repr__(self) -> str:
        kind = "BOM" if self.m == 1 else f"WOM(m={self.m})"
        return f"SinglePortRAM(n={self.n}, {kind})"

    # -- access ----------------------------------------------------------------

    def read(self, addr: int) -> int:
        """Read logical address ``addr`` (one cycle)."""
        value = self._read_internal(addr)
        self.stats.reads += 1
        self.stats.cycles += 1
        if self._trace is not None:
            self._trace.record(
                Operation(self.stats.cycles - 1, 0, "r", addr, value)
            )
        self._behavior.settle(self._array, self.stats.cycles)
        return value

    def write(self, addr: int, value: int) -> None:
        """Write ``value`` to logical address ``addr`` (one cycle)."""
        self._write_internal(addr, value)
        self.stats.writes += 1
        self.stats.cycles += 1
        if self._trace is not None:
            self._trace.record(
                Operation(self.stats.cycles - 1, 0, "w", addr, value)
            )
        self._behavior.settle(self._array, self.stats.cycles)

    def apply_stream(self, ops, tables=(), start: int = 0,
                     end: int | None = None, stop_on_mismatch: bool = False,
                     mismatches: list | None = None,
                     captured: list | None = None) -> int:
        """Bulk-execute compiled operation records (the :mod:`repro.sim` IR).

        Each record is ``(kind, port, addr, value, expected, idle)`` --
        see :mod:`repro.sim.ir` for the kind tags.  Execution is
        semantically identical to issuing the equivalent
        ``read``/``write``/``idle`` calls one at a time (operation stats,
        tracing and behaviour settling included); the point of the bulk
        entry is the tight loop, which is what fault campaigns replay
        thousands of times.

        Parameters
        ----------
        ops:
            Sequence of records (usually ``OpStream.ops``).
        tables:
            Constant-multiplier lookup tables for ``"ra"`` accumulator
            arithmetic (``OpStream.tables``; only needed when the stream
            contains ``"ra"`` records with non-identity multipliers).
        start, end:
            Half-open record range to execute (default: all).
        stop_on_mismatch:
            Return at the first checked read whose actual value differs
            from its expectation (campaign early-abort).
        mismatches:
            Optional list collecting ``(record_index, actual)`` for every
            mismatching checked read.
        captured:
            Optional list collecting the actual value of every ``"s"``
            (signature) read, in order.

        Returns the number of read/write operations executed (idles cost
        cycles, not operations).

        >>> ram = SinglePortRAM(4)
        >>> ram.apply_stream([("w", 0, 2, 1, None, 0), ("r", 0, 2, None, 1, 0)])
        2
        >>> ram.stats.operations
        2
        """
        if end is None:
            end = len(ops)
        # The loop below is _read_internal/_write_internal + the stats/
        # trace/settle bookkeeping of read()/write()/idle(), inlined and
        # with the per-op attribute traffic hoisted into locals.  Any
        # semantic change here must be mirrored in those methods (the
        # equivalence tests in tests/sim compare both paths op for op).
        stats = self.stats
        trace = self._trace
        behavior = self._behavior
        array = self._array
        decoder_map = self._decoder.map
        # Streams are validated at compile time (addresses come from
        # range(n) walks / trajectory permutations), so the per-op decoder
        # address re-check is elided: with no overrides installed the
        # mapping is the identity, and the array's own cell check still
        # rejects any out-of-range address a hand-built record smuggles in.
        overrides = self._decoder._overrides
        scrambler = self._scrambler
        wired_and = self._wired == "and"
        read_cell = behavior.read_cell
        write_cell = behavior.write_cell
        settle = behavior.settle
        check_value = array._check_value
        reads = writes = executed = 0
        # Per-accumulator-id recurrence state, selected by the record's
        # sixth slot exactly like the multi-port and generic executors
        # (flat streams normally use the single implicit accumulator 0,
        # but hand-built flat streams may run several automata).
        accs: dict[int, int] = {}
        cycles = stats.cycles
        try:
            for index in range(start, end):
                kind, port, addr, value, expected, idle = ops[index]
                if kind == "i":
                    cycles += idle
                    settle(array, cycles)
                    continue
                physical = addr if scrambler is None else scrambler.map(addr)
                if kind == "w" or kind == "wa":
                    if kind == "wa":
                        # Encode the stored-data inversion.
                        value = accs.get(idle, 0) ^ value
                        accs[idle] = 0
                    check_value(value)
                    if not overrides:
                        write_cell(array, physical, value, cycles)
                    else:
                        for cell in decoder_map(physical):
                            write_cell(array, cell, value, cycles)
                    writes += 1
                    cycles += 1
                    if trace is not None:
                        trace.record(Operation(cycles - 1, 0, "w", addr, value))
                    settle(array, cycles)
                    executed += 1
                elif kind == "r" or kind == "s" or kind == "ra":
                    cells = (physical,) if not overrides else decoder_map(physical)
                    if not cells:
                        actual = self._sense  # AF-A: sense amp keeps last value
                    elif len(cells) == 1:
                        actual = read_cell(array, cells[0], cycles)
                        self._sense = actual
                    else:
                        actual = read_cell(array, cells[0], cycles)
                        for cell in cells[1:]:
                            other = read_cell(array, cell, cycles)
                            actual = (actual & other) if wired_and \
                                else (actual | other)
                        self._sense = actual
                    reads += 1
                    cycles += 1
                    if trace is not None:
                        trace.record(Operation(cycles - 1, 0, "r", addr, actual))
                    settle(array, cycles)
                    executed += 1
                    if kind == "ra":
                        actual ^= expected  # decode the stored-data inversion
                        if actual:
                            accs[idle] = accs.get(idle, 0) ^ (
                                actual if value is None
                                else tables[value][actual]
                            )
                    else:
                        if kind == "s" and captured is not None:
                            captured.append(actual)
                        if actual != expected:
                            if mismatches is not None:
                                mismatches.append((index, actual))
                            if stop_on_mismatch:
                                return executed
                else:
                    if kind == "grp":
                        raise ValueError(
                            "cycle-grouped streams need a multi-port "
                            "front-end (see MultiPortRAM.apply_stream); a "
                            "single-port RAM cannot issue several "
                            "operations in one cycle"
                        )
                    raise ValueError(f"unknown op kind {kind!r}")
        finally:
            stats.reads += reads
            stats.writes += writes
            stats.cycles = cycles
        return executed

    @property
    def scrambler(self):
        """The address scrambler, or None (identity mapping)."""
        return self._scrambler

    def _map_addr(self, addr: int) -> int:
        if self._scrambler is not None:
            return self._scrambler.map(addr)
        return addr

    def _read_internal(self, addr: int) -> int:
        cells = self._decoder.map(self._map_addr(addr))
        if not cells:
            # AF-A: no cell activated; the sense amp keeps its last value.
            return self._sense
        values = [
            self._behavior.read_cell(self._array, cell, self.stats.cycles)
            for cell in cells
        ]
        value = values[0]
        for v in values[1:]:
            value = (value & v) if self._wired == "and" else (value | v)
        self._sense = value
        return value

    def _write_internal(self, addr: int, value: int) -> None:
        self._array._check_value(value)
        for cell in self._decoder.map(self._map_addr(addr)):
            self._behavior.write_cell(self._array, cell, value, self.stats.cycles)

    def idle(self, cycles: int) -> None:
        """Let ``cycles`` memory cycles pass without any operation.

        Models the pause ("delay element") retention tests insert between
        writing and reading: data-retention faults decay during idle time,
        which is measured on the same cycle counter all operations use.
        """
        if cycles < 0:
            raise ValueError(f"idle cycles must be non-negative, got {cycles}")
        self.stats.cycles += cycles
        self._behavior.settle(self._array, self.stats.cycles)

    # -- convenience -----------------------------------------------------------

    def fill(self, value: int) -> None:
        """Direct (un-counted, fault-free) initialization of all cells.

        Test engines must *not* use this -- it models the factory state, not
        a test operation.
        """
        self._array.fill(value)

    def dump(self) -> list[int]:
        """Snapshot of physical cell contents (bypasses faults)."""
        return self._array.dump()
