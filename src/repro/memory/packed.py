"""Bit-plane memory backend: one int word per address, one lane per fault.

:class:`PackedMemoryArray` models ``lanes`` independent single-bit
memories at once.  Word ``words[addr]`` is a plain Python int used as a
bitmask: lane *k* (bit ``1 << k``) holds the value cell ``addr`` has in
the *k*-th memory copy.  Because every copy replays the *same* compiled
operation sequence (an :class:`~repro.sim.ir.OpStream`) and differs only
in which fault is injected, a whole fault class -- same mask algebra,
different fault site per lane -- executes in one pass over the stream:

* a constant write broadcasts to all lanes (``0`` or the all-ones mask),
* a checked read XORs the word with the broadcast expectation; any
  non-zero bit is a *detection in that lane*,
* π-test accumulator ops (``"ra"``/``"wa"``) keep one accumulator *bit
  per lane*, so data corrupted by a fault propagates through the
  pseudo-ring exactly as it would in that lane's dedicated replay.

Per-lane fault semantics plug in through :class:`LaneFaultModel`: the
executor calls ``transform_write`` / ``after_write`` with lane masks, and
a model implements e.g. stuck-at-1 as ``new |= sa1_mask[addr]`` -- one
big-int OR applies the fault to hundreds of lanes at once.  Models are
built from :meth:`repro.faults.base.Fault.vector_semantics` descriptors
by :mod:`repro.sim.batched`, which also owns universe partitioning and
the per-fault fallback.

The backend is exact only for bit-oriented geometries (``m == 1``); the
batched engine enforces that and routes everything else to the scalar
campaign path.
"""

from __future__ import annotations

__all__ = ["PackedMemoryArray", "LaneFaultModel"]


class LaneFaultModel:
    """Per-lane fault semantics applied as mask operations.

    The default implementation is a no-op (all lanes healthy).  Concrete
    models (:mod:`repro.sim.batched`) override the hooks they need; each
    hook receives and returns plain-int lane masks.
    """

    #: Set True by models that override :meth:`transform_read` (e.g. the
    #: stuck-open sense-latch model).  The executor checks the flag once
    #: per pass so the common read-transparent models pay nothing on the
    #: read hot path.
    transforms_reads = False

    def install(self, memory: "PackedMemoryArray") -> None:
        """Force the initial state (e.g. stuck-at-1 lanes start at 1).
        Called once, before the first operation.  Default: nothing."""

    def transform_read(self, addr: int, sensed: int) -> int:
        """Lane mask actually *observed* when reading ``addr`` whose
        stored mask is ``sensed`` (read-side state such as a sense latch
        lives in the model).  Only consulted when
        :attr:`transforms_reads` is True.  Default: faithful."""
        return sensed

    def transform_write(self, addr: int, old: int, new: int) -> int:
        """Lane mask actually stored when writing ``new`` over ``old`` at
        ``addr``.  Default: faithful."""
        return new

    def after_write(self, addr: int, old: int, committed: int,
                    memory: "PackedMemoryArray") -> None:
        """React to the committed write ``old -> committed`` at ``addr``
        (coupling models corrupt their victims here).  Default: nothing."""


class PackedMemoryArray:
    """``n`` addresses x ``lanes`` independent single-bit memory copies.

    Parameters
    ----------
    n:
        Number of addresses (cells) per memory copy.
    lanes:
        Number of parallel copies; each compiled-stream replay resolves
        one fault per lane.

    Examples
    --------
    >>> packed = PackedMemoryArray(4, lanes=8)
    >>> packed.write_lanes(2, 0b1010_1010)
    >>> packed.lane_value(2, 1)
    1
    >>> packed.lane_value(2, 2)
    0
    >>> bin(packed.ones)
    '0b11111111'
    """

    __slots__ = ("_n", "_lanes", "_ones", "words")

    def __init__(self, n: int, lanes: int):
        if n < 1:
            raise ValueError(f"memory needs at least one cell, got n={n}")
        if lanes < 1:
            raise ValueError(f"need at least one lane, got {lanes}")
        self._n = n
        self._lanes = lanes
        self._ones = (1 << lanes) - 1
        self.words: list[int] = [0] * n

    # -- geometry --------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of addresses per memory copy."""
        return self._n

    @property
    def lanes(self) -> int:
        """Number of parallel memory copies."""
        return self._lanes

    @property
    def ones(self) -> int:
        """The all-lanes mask, ``(1 << lanes) - 1``."""
        return self._ones

    def __repr__(self) -> str:
        return f"PackedMemoryArray(n={self._n}, lanes={self._lanes})"

    # -- access ----------------------------------------------------------------

    def read_lanes(self, addr: int) -> int:
        """The lane mask stored at ``addr``."""
        return self.words[addr]

    def write_lanes(self, addr: int, mask: int) -> None:
        """Replace the lane mask stored at ``addr``."""
        self.words[addr] = mask & self._ones

    def lane_value(self, addr: int, lane: int) -> int:
        """The single-bit value cell ``addr`` holds in copy ``lane``."""
        if not 0 <= lane < self._lanes:
            raise IndexError(f"lane {lane} out of range [0, {self._lanes})")
        return (self.words[addr] >> lane) & 1

    def dump_lane(self, lane: int) -> list[int]:
        """Snapshot of one memory copy's cells (for debugging/tests)."""
        if not 0 <= lane < self._lanes:
            raise IndexError(f"lane {lane} out of range [0, {self._lanes})")
        bit = 1 << lane
        return [1 if word & bit else 0 for word in self.words]

    # -- bulk replay -----------------------------------------------------------

    def apply_stream(self, ops, tables=(), model: LaneFaultModel | None = None,
                     detected: int = 0,
                     stop_when_all_detected: bool = True) -> tuple[int, int]:
        """Replay compiled op records against every lane simultaneously.

        Executes the :mod:`repro.sim` IR (records
        ``(kind, port, addr, value, expected, idle)``, see
        :mod:`repro.sim.ir`) with bit-oriented (``m == 1``) semantics.
        Values and expectations broadcast to all lanes; ``model`` applies
        per-lane fault semantics.  A checked read that mismatches its
        expectation in lane *k* marks lane *k* detected; replay stops
        early once *every* lane is detected (the batched analogue of the
        scalar engine's first-mismatch abort -- later mismatches cannot
        change any verdict because detection is monotone).

        ``"ra"``/``"wa"`` accumulator ops keep one accumulator bit per
        lane, so recurrence write data is recomputed from each lane's
        actual (possibly corrupted) reads -- exactly the scalar replay
        semantics, lane-parallel.  ``"i"`` idles are no-ops: every
        vectorizable fault model is timing-independent (retention faults
        take the per-fault path).

        Parameters
        ----------
        ops:
            Sequence of op records (usually ``OpStream.ops``).
        tables:
            ``OpStream.tables`` constant-multiplier tables; for ``m == 1``
            (GF(2)) a table can only encode multiply-by-0 or -1.
        model:
            Per-lane fault semantics; None replays healthy lanes.
        detected:
            Initial detected-lane mask (continue a partial campaign).
        stop_when_all_detected:
            Disable to force a full replay even once every lane is
            detected (e.g. to inspect final per-lane memory state).

        Returns ``(detected, executed)``: the final detected-lane mask and
        the number of read/write records executed (once per *pass*, not
        per lane).

        >>> packed = PackedMemoryArray(2, lanes=3)
        >>> packed.apply_stream([("w", 0, 0, 1, None, 0),
        ...                      ("r", 0, 0, None, 1, 0)])
        (0, 2)
        """
        words = self.words
        ones = self._ones
        executed = 0
        acc = 0
        if model is None:
            model = _NO_FAULTS
        transform_write = model.transform_write
        after_write = model.after_write
        # Hoisted flag: read-transparent models (the common case) skip
        # the read hook entirely, keeping the checked-read fast path to
        # one XOR per record.
        transform_read = model.transform_read if model.transforms_reads \
            else None
        for kind, _port, addr, value, expected, _idle in ops:
            if kind == "w" or kind == "wa":
                if kind == "w":
                    new = ones if value else 0
                else:
                    new = acc ^ (ones if value else 0)
                    acc = 0
                old = words[addr]
                new = transform_write(addr, old, new)
                words[addr] = new
                after_write(addr, old, new, self)
                executed += 1
            elif kind == "r" or kind == "s":
                executed += 1
                observed = words[addr] if transform_read is None \
                    else transform_read(addr, words[addr])
                diff = observed ^ (ones if expected else 0)
                if diff:
                    detected |= diff
                    if detected == ones and stop_when_all_detected:
                        return detected, executed
            elif kind == "ra":
                executed += 1
                # Decode the stored-data inversion, then add the lane's
                # recurrence term into its accumulator bit.  In GF(2) the
                # only non-zero multiplier is 1, so the table either
                # passes the difference through or annihilates it.
                observed = words[addr] if transform_read is None \
                    else transform_read(addr, words[addr])
                diff = observed ^ (ones if expected else 0)
                if diff and (value is None or tables[value][1]):
                    acc ^= diff
            elif kind == "i":
                pass
            elif kind == "grp":
                raise ValueError(
                    "cycle-grouped streams are outside the packed "
                    "backend's contract (the batched engine delegates "
                    "multi-port campaigns to the scalar path)"
                )
            else:
                raise ValueError(f"unknown op kind {kind!r}")
        return detected, executed


_NO_FAULTS = LaneFaultModel()
