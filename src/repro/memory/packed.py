"""Plane-packed memory backend: one column per address, one lane per fault.

:class:`PackedMemoryArray` models ``lanes`` independent memory copies of
``n`` cells by ``m`` bits at once.  The column stored at ``addr`` is a
*plane-major* bit matrix of ``m * lanes`` bits: bit ``b * lanes + k``
holds bit *b* of the value cell ``addr`` has in the *k*-th memory copy.
A bit-oriented geometry (``m == 1``) degenerates to the classic
one-bit-per-lane mask layout.  Because every copy replays the *same*
compiled operation sequence (an :class:`~repro.sim.ir.OpStream`) and
differs only in which fault is injected, a whole fault class -- same
mask algebra, different fault site per lane -- executes in one pass over
the stream:

* a constant write broadcasts its m-bit value to all lanes (the
  :meth:`PackedMemoryArray.broadcast` column),
* a checked read XORs the column with the broadcast expectation; any
  lane with a non-zero bit in *any* plane is a *detection in that lane*,
* pi-test accumulator ops (``"ra"``/``"wa"``) keep one m-bit accumulator
  *column per accumulator id*, so data corrupted by a fault propagates
  through the pseudo-ring exactly as it would in that lane's dedicated
  replay.  GF(2^m) constant multiplication is linear over GF(2), so a
  precompiled lookup table lowers to a per-plane shift/XOR plan -- a
  handful of column operations per record, not per lane.

Two storage **backends** implement the column algebra behind one API:

``"int"``
    One plain Python int per address -- arbitrary precision, no
    dependencies.  CPython's bignum bitwise ops are word-packed C loops
    with near-zero dispatch cost, and the executor's hot paths need
    fewer memory passes per record on this representation (writes
    rebind, zero diffs short-circuit), so this backend measures fastest
    at every column width the campaign engine produces.
``"numpy"``
    A fixed-width uint64 block array of shape ``(n, m, ceil(lanes/64))``
    -- every column operation is a vectorized word-array op over
    preallocated storage, with bounded per-address memory independent
    of fault state.
``"auto"`` (the default)
    ``"numpy"`` when the package is importable and the column is wider
    than ``AUTO_NUMPY_MIN_BITS``, else ``"int"``.  The threshold is set
    from ``benchmarks/bench_column_kernel.py`` measurements; see its
    comment below.

Per-lane fault semantics plug in through :class:`LaneFaultModel`: the
executor calls ``transform_write`` / ``after_write`` / ``settle`` with
backend columns, and a model implements e.g. stuck-at-1 on bit *b* as
``new | sa1_mask[addr]`` with the mask positioned in plane *b* -- one
column OR applies the fault to hundreds of lanes at once.  Models stay
backend-agnostic by building their masks through the column/row helper
surface (:meth:`PackedMemoryArray.col_from_int`,
:meth:`~PackedMemoryArray.spread`, :meth:`~PackedMemoryArray.fold`,
:meth:`~PackedMemoryArray.shift_planes`, the ``*_lanes`` mutators, ...)
instead of touching the storage directly.  Models are built from
:meth:`repro.faults.base.Fault.vector_semantics` descriptors by
:mod:`repro.sim.batched`, which also owns universe partitioning and the
per-fault fallback.

Cycle-grouped (multi-port) streams execute natively: a ``"grp"`` marker
runs its k member records as *one memory cycle* -- every read senses the
pre-cycle columns, then the writes commit in member order -- with the
model's ``clock``/``settle`` hooks firing once per group and decoder
write-write conflicts folded into the detection mask through
:meth:`LaneFaultModel.group_write_conflicts`.  The only ``"grp"`` shapes
the executor still rejects are structurally invalid ones (a truncated
group, or a member kind outside ``w/r/s/ra/wa``); port-level validation
is :class:`~repro.sim.ir.OpStream`'s compile-time job.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

__all__ = ["PackedMemoryArray", "LaneFaultModel"]


#: Column width (``m * lanes`` bits) at which the ``"auto"`` backend
#: switches to uint64 blocks.  ``benchmarks/bench_column_kernel.py``
#: measures the big-int kernel faster on every geometry up to
#: multi-megabit columns (CPython's word-packed bignum ops are
#: memory-bound too, and the int executor's short-circuits save whole
#: passes per record), so the threshold sits beyond any width the
#: campaign engine produces (``max_lanes=4096`` at ``m=8`` is 2^15
#: bits): ``"auto"`` resolves to ``"int"`` in practice and the numpy
#: backend is an explicitly requested, contract-tested alternative.
#: Retune against the bench before lowering.
AUTO_NUMPY_MIN_BITS = 1 << 23


class LaneFaultModel:
    """Per-lane fault semantics applied as column operations.

    The default implementation is a no-op (all lanes healthy).  Concrete
    models (:mod:`repro.sim.batched`) override the hooks they need; each
    hook receives and returns backend lane columns (plane-major, see the
    module docstring -- for ``m == 1`` a column is simply a lane mask).
    Hooks must treat their arguments as immutable (rebind, never mutate
    in place): on the numpy backend an in-place op would corrupt the
    executor's cached broadcast columns.
    """

    #: Set True by models that override :meth:`transform_read` (e.g. the
    #: stuck-open sense-latch model).  The executor checks the flag once
    #: per pass so the common read-transparent models pay nothing on the
    #: read hot path.
    transforms_reads = False

    #: Set True by models that override :meth:`settle` (e.g. the state
    #: coupling model).  Mirrors the scalar engine's settle fast path
    #: (:class:`repro.faults.injector.FaultInjector` only visits faults
    #: that override ``settle``): the executor checks the flag once per
    #: pass and most models pay nothing per record.
    settles = False

    #: Set True by models that need the stream's cycle clock (the
    #: retention model's decay timing).  The executor then calls
    #: :meth:`clock` once per record with the scalar engines' cycle
    #: counter semantics: the time *at which the record executes*
    #: (pre-increment), with reads and writes costing one cycle each,
    #: a whole cycle group costing one cycle, and ``"i"`` records
    #: adding their idle count.
    timed = False

    #: Set True by models that remap addresses to physical cells (the
    #: decoder model).  The executor then asks
    #: :meth:`group_write_conflicts` once per cycle group with the
    #: group's write addresses, so lanes whose mappings make two
    #: simultaneous writes land on one physical cell are detected --
    #: the lane-parallel analogue of the scalar executor's
    #: ``PortConflictError``-counts-as-detection contract.
    maps_addresses = False

    def install(self, memory: "PackedMemoryArray") -> None:
        """Force the initial state (e.g. stuck-at-1 lanes start at 1)
        and convert int masks to backend columns.  Called once, before
        the first operation.  Default: nothing."""

    def clock(self, cycle: int) -> None:
        """Observe the stream clock before each record executes.  Only
        consulted when :attr:`timed` is True.  Default: nothing."""

    def transform_read(self, addr: int, sensed, port: int = 0):
        """Lane column actually *observed* when ``port`` reads ``addr``
        whose stored column is ``sensed`` (read-side state such as a
        sense latch lives in the model; per-port latches key on
        ``port``, which flat single-port streams always pass as 0).
        Only consulted when :attr:`transforms_reads` is True.
        Default: faithful."""
        return sensed

    def group_write_conflicts(self, addrs: tuple[int, ...]) -> int:
        """Int lane mask of the lanes where a cycle group writing
        ``addrs`` simultaneously drives one physical cell twice (through
        this model's per-lane address mapping).  Only consulted when
        :attr:`maps_addresses` is True.  Default: no lane conflicts."""
        return 0

    def transform_write(self, addr: int, old, new):
        """Lane column actually stored when writing ``new`` over ``old``
        at ``addr``.  Default: faithful."""
        return new

    def after_write(self, addr: int, old, committed,
                    memory: "PackedMemoryArray") -> None:
        """React to the committed write ``old -> committed`` at ``addr``
        (coupling models corrupt their victims here).  Default: nothing."""

    def settle(self, memory: "PackedMemoryArray") -> None:
        """Enforce steady-state conditions after each executed record --
        the lane-parallel analogue of :meth:`repro.faults.base.Fault
        .settle`, which the scalar engines run after every memory cycle
        (state coupling enforces its condition here).  A cycle group is
        one memory cycle: the hook fires once after the whole group's
        writes commit.  Only consulted when :attr:`settles` is True.
        Default: nothing."""


class PackedMemoryArray:
    """``n`` addresses x ``lanes`` independent ``m``-bit memory copies.

    Parameters
    ----------
    n:
        Number of addresses (cells) per memory copy.
    lanes:
        Number of parallel copies; each compiled-stream replay resolves
        one fault per lane.
    m:
        Bits per cell (1 = bit-oriented, the default).  Word-oriented
        copies store bit *b* of a cell in plane *b* of the column
        (bits ``[b * lanes, (b + 1) * lanes)``).
    backend:
        ``"int"`` (big-int columns), ``"numpy"`` (uint64 block columns,
        shape ``(n, m, ceil(lanes/64))``), or ``"auto"`` (numpy for wide
        columns when available).  Both backends are observationally
        identical -- same verdicts, same ``captured`` ints, same
        ``dump_lane`` snapshots (pinned by the contract suite).

    Examples
    --------
    >>> packed = PackedMemoryArray(4, lanes=8)
    >>> packed.write_lanes(2, 0b1010_1010)
    >>> packed.lane_value(2, 1)
    1
    >>> packed.lane_value(2, 2)
    0
    >>> bin(packed.ones)
    '0b11111111'

    A word-oriented geometry packs one plane per bit:

    >>> wom = PackedMemoryArray(4, lanes=2, m=4)
    >>> wom.write_lanes(0, wom.broadcast(0b1010))
    >>> wom.lane_value(0, 0), wom.lane_value(0, 1)
    (10, 10)
    """

    __slots__ = ("_n", "_lanes", "_m", "_ones", "_full", "_backend",
                 "_w", "_row_ones", "_replicate", "_blocks", "words")

    def __init__(self, n: int, lanes: int, m: int = 1,
                 backend: str = "auto"):
        if n < 1:
            raise ValueError(f"memory needs at least one cell, got n={n}")
        if lanes < 1:
            raise ValueError(f"need at least one lane, got {lanes}")
        if m < 1:
            raise ValueError(f"cells need at least one bit, got m={m}")
        if backend not in ("auto", "int", "numpy"):
            raise ValueError(
                f"backend must be 'auto', 'int' or 'numpy', got {backend!r}"
            )
        if backend == "auto":
            backend = "numpy" if (_np is not None
                                  and m * lanes >= AUTO_NUMPY_MIN_BITS) \
                else "int"
        elif backend == "numpy" and _np is None:
            raise ValueError("backend='numpy' requires numpy")
        self._n = n
        self._lanes = lanes
        self._m = m
        self._ones = (1 << lanes) - 1
        self._full = (1 << (m * lanes)) - 1
        self._backend = backend
        #: plane-replication factor: lane rows (< 2**lanes) multiplied by
        #: it spread carry-free into every plane (int backend).
        self._replicate = sum(1 << (bit * lanes) for bit in range(m))
        if backend == "numpy":
            self._w = (lanes + 63) >> 6
            self._row_ones = self._row_from_int_np(self._ones)
            self._blocks = _np.zeros((n, m, self._w), dtype=_np.uint64)
            # Kept pointing at the block array so ad-hoc inspection still
            # has a ``words``; models go through the helper surface.
            self.words = self._blocks
        else:
            self._w = 0
            self._row_ones = None
            self._blocks = None
            self.words: list[int] = [0] * n

    # -- geometry --------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of addresses per memory copy."""
        return self._n

    @property
    def lanes(self) -> int:
        """Number of parallel memory copies."""
        return self._lanes

    @property
    def m(self) -> int:
        """Bits per cell (planes per column)."""
        return self._m

    @property
    def ones(self) -> int:
        """The all-lanes *plane* mask, ``(1 << lanes) - 1``."""
        return self._ones

    @property
    def full(self) -> int:
        """The all-planes all-lanes column mask, ``(1 << m*lanes) - 1``."""
        return self._full

    @property
    def backend(self) -> str:
        """The resolved storage backend: ``"int"`` or ``"numpy"``."""
        return self._backend

    def __repr__(self) -> str:
        m = f", m={self._m}" if self._m != 1 else ""
        backend = ", backend='numpy'" if self._backend == "numpy" else ""
        return f"PackedMemoryArray(n={self._n}, lanes={self._lanes}{m}{backend})"

    # -- int <-> backend conversions -------------------------------------------
    #
    # A *column* is one address's full plane-major bit matrix (``m *
    # lanes`` bits); a *row* is one plane's lane mask (``lanes`` bits).
    # On the int backend both are plain ints; on the numpy backend a
    # column is a ``(m, W)`` uint64 array and a row a ``(W,)`` one.
    # Models build their masks as ints at construction time (geometry
    # permitting) and convert once at ``install``.

    def _row_from_int_np(self, row: int):
        out = _np.empty(self._w, dtype=_np.uint64)
        for word in range(self._w):
            out[word] = (row >> (word << 6)) & 0xFFFFFFFFFFFFFFFF
        return out

    def _row_to_int_np(self, row) -> int:
        out = 0
        for word in range(self._w):
            out |= int(row[word]) << (word << 6)
        return out

    def row_from_int(self, row: int):
        """Backend row (one plane's lane mask) from an int lane mask."""
        if self._backend == "int":
            return row & self._ones
        return self._row_from_int_np(row & self._ones)

    def row_to_int(self, row) -> int:
        """Int lane mask from a backend row."""
        if self._backend == "int":
            return row
        return self._row_to_int_np(row)

    def col_from_int(self, column: int):
        """Backend column from a plane-major int column."""
        if self._backend == "int":
            return column & self._full
        out = _np.empty((self._m, self._w), dtype=_np.uint64)
        for plane in range(self._m):
            out[plane] = self._row_from_int_np(
                (column >> (plane * self._lanes)) & self._ones)
        return out

    def col_to_int(self, column) -> int:
        """Plane-major int column from a backend column."""
        if self._backend == "int":
            return column
        out = 0
        for plane in range(self._m):
            out |= self._row_to_int_np(column[plane]) \
                << (plane * self._lanes)
        return out

    def copy_col(self, column):
        """A detached copy of a backend column.  Int columns are
        immutable, but numpy columns handed to model hooks may be live
        views into the storage -- a model that *latches* a column (e.g.
        a sense amplifier) must copy it or silently track later writes."""
        if self._backend == "numpy":
            return column.copy()
        return column

    # -- column/row algebra (the lane-model helper surface) --------------------

    def broadcast(self, value: int):
        """The column storing m-bit ``value`` in every lane.

        >>> PackedMemoryArray(2, lanes=4, m=2).broadcast(0b10)
        240
        """
        if not 0 <= value < (1 << self._m):
            raise ValueError(
                f"value {value!r} does not fit an m={self._m}-bit cell"
            )
        if self._backend == "numpy":
            out = _np.zeros((self._m, self._w), dtype=_np.uint64)
            for plane in range(self._m):
                if (value >> plane) & 1:
                    out[plane] = self._row_ones
            return out
        if self._m == 1:
            return self._ones if value else 0
        column = 0
        shift = 0
        lanes = self._lanes
        ones = self._ones
        while value:
            if value & 1:
                column |= ones << shift
            value >>= 1
            shift += lanes
        return column

    def lane_mask(self, column) -> int:
        """Collapse a column to an *int* lane mask: lane *k* is set when
        any plane of lane *k* is set in ``column`` (the detection fold).

        >>> PackedMemoryArray(2, lanes=4, m=2).lane_mask(0b0001_1000)
        9
        """
        if self._backend == "numpy":
            if isinstance(column, int):
                column = self.col_from_int(column)
            return self._row_to_int_np(_np.bitwise_or.reduce(column, axis=0))
        lanes = self._lanes
        mask = column & self._ones
        rest = column >> lanes
        while rest:
            mask |= rest & self._ones
            rest >>= lanes
        return mask

    def fold(self, column):
        """Collapse a column to a backend *row* (any plane set per lane)
        -- :meth:`lane_mask` without leaving the backend domain."""
        if self._backend == "numpy":
            return _np.bitwise_or.reduce(column, axis=0)
        return self.lane_mask(column)

    def spread(self, row):
        """The column with ``row`` replicated into every plane (the mask
        that selects *whole cells* of the row's lanes).  On the numpy
        backend the result is a read-only broadcast view."""
        if self._backend == "numpy":
            return _np.broadcast_to(row, (self._m, self._w))
        return row * self._replicate

    def row_to_plane(self, row, bit: int):
        """The column with ``row`` positioned in plane ``bit`` only."""
        if self._backend == "numpy":
            out = _np.zeros((self._m, self._w), dtype=_np.uint64)
            out[bit] = row
            return out
        return row << (bit * self._lanes)

    def shift_planes(self, column, delta: int):
        """``column`` moved ``delta`` planes up (negative: down); planes
        shifted out of range are dropped.  This is the aggressor-plane ->
        victim-plane repositioning coupling models use."""
        if delta == 0:
            return column
        if self._backend == "numpy":
            out = _np.zeros((self._m, self._w), dtype=_np.uint64)
            if delta > 0:
                out[delta:] = column[:self._m - delta]
            else:
                out[:self._m + delta] = column[-delta:]
            return out
        shifted = column << (delta * self._lanes) if delta > 0 \
            else column >> (-delta * self._lanes)
        return shifted & self._full

    def plane(self, addr: int, bit: int):
        """Plane ``bit`` of the column at ``addr``, as a backend row.
        Treat the result as read-only (numpy returns a view)."""
        if self._backend == "numpy":
            return self._blocks[addr, bit]
        return (self.words[addr] >> (bit * self._lanes)) & self._ones

    def match_lanes(self, addr: int, value_column):
        """Backend row of the lanes whose *whole m-bit cell* at ``addr``
        equals the value ``value_column`` broadcasts."""
        if self._backend == "numpy":
            diff = self._blocks[addr] ^ value_column
            return self._row_ones & ~_np.bitwise_or.reduce(diff, axis=0)
        return self._ones & ~self.lane_mask(self.words[addr] ^ value_column)

    def any(self, value) -> bool:
        """True when any bit of a backend row or column is set."""
        if self._backend == "numpy":
            return bool(value.any())
        return bool(value)

    # -- access ----------------------------------------------------------------

    def read_lanes(self, addr: int):
        """The lane column stored at ``addr`` (numpy: a live view)."""
        if self._backend == "numpy":
            return self._blocks[addr]
        return self.words[addr]

    def write_lanes(self, addr: int, mask) -> None:
        """Replace the lane column stored at ``addr``.  Accepts an int
        column on either backend."""
        if self._backend == "numpy":
            if isinstance(mask, int):
                mask = self.col_from_int(mask)
            self._blocks[addr] = mask & self.spread(self._row_ones)
            return
        self.words[addr] = mask & self._full

    def or_lanes(self, addr: int, column) -> None:
        """``column[addr] |= column`` in the backend domain."""
        if self._backend == "numpy":
            self._blocks[addr] |= column
        else:
            self.words[addr] |= column

    def andnot_lanes(self, addr: int, column) -> None:
        """Clear ``column``'s bits at ``addr``."""
        if self._backend == "numpy":
            self._blocks[addr] &= ~column
        else:
            self.words[addr] &= ~column

    def xor_lanes(self, addr: int, column) -> None:
        """Toggle ``column``'s bits at ``addr``."""
        if self._backend == "numpy":
            self._blocks[addr] ^= column
        else:
            self.words[addr] ^= column

    def blend_lanes(self, addr: int, select, value_column) -> None:
        """Replace the ``select``-masked bits at ``addr`` with
        ``value_column``'s (the column analogue of a bit-select mux)."""
        if self._backend == "numpy":
            self._blocks[addr] = (self._blocks[addr] & ~select) \
                | (value_column & select)
        else:
            self.words[addr] = (self.words[addr] & ~select) \
                | (value_column & select)

    def lane_value(self, addr: int, lane: int) -> int:
        """The m-bit value cell ``addr`` holds in copy ``lane``."""
        if not 0 <= lane < self._lanes:
            raise IndexError(f"lane {lane} out of range [0, {self._lanes})")
        if self._backend == "numpy":
            word, offset = lane >> 6, lane & 63
            value = 0
            for bit in range(self._m):
                value |= int((self._blocks[addr, bit, word] >> offset) & 1) \
                    << bit
            return value
        column = self.words[addr] >> lane
        if self._m == 1:
            return column & 1
        value = 0
        for bit in range(self._m):
            value |= ((column >> (bit * self._lanes)) & 1) << bit
        return value

    def dump_lane(self, lane: int) -> list[int]:
        """Snapshot of one memory copy's cells (for debugging/tests)."""
        if not 0 <= lane < self._lanes:
            raise IndexError(f"lane {lane} out of range [0, {self._lanes})")
        return [self.lane_value(addr, lane) for addr in range(self._n)]

    # -- bulk replay -----------------------------------------------------------

    def apply_stream(self, ops, tables=(), model: LaneFaultModel | None = None,
                     detected: int = 0,
                     stop_when_all_detected: bool = True,
                     captured: list | None = None) -> tuple[int, int]:
        """Replay compiled op records against every lane simultaneously.

        Executes the :mod:`repro.sim` IR (records
        ``(kind, port, addr, value, expected, idle)``, see
        :mod:`repro.sim.ir`) lane-parallel.  Values and expectations
        broadcast to all lanes; ``model`` applies per-lane fault
        semantics.  A checked read that mismatches its expectation in
        lane *k* (in any bit plane) marks lane *k* detected; replay
        stops early once *every* lane is detected (the batched analogue
        of the scalar engine's first-mismatch abort -- later mismatches
        cannot change any verdict because detection is monotone).

        ``"ra"``/``"wa"`` accumulator ops keep one m-bit accumulator
        column *per accumulator id* (the record's sixth slot, exactly
        like the scalar executors' per-id dicts), so recurrence write
        data is recomputed from each lane's actual (possibly corrupted)
        reads -- the scalar replay semantics, lane-parallel.  GF(2^m)
        constant multipliers lower each ``OpStream.tables`` entry to a
        per-plane shift/XOR plan once per pass (multiplication by a
        constant is GF(2)-linear), so a multiply costs a handful of
        column ops per record.  ``"i"`` idles execute no operation but
        advance the model clock (retention decay) and fire the model's
        ``settle`` hook, mirroring the scalar engines.

        ``"grp"`` cycle groups execute as one memory cycle: all of the
        group's reads (``"r"``/``"s"``/``"ra"``) sense the *pre-cycle*
        columns, then the writes commit in member order, with the
        model's ``clock``/``settle`` hooks firing once per group and
        per-lane decoder write-write conflicts folded into the detection
        mask (:meth:`LaneFaultModel.group_write_conflicts`) -- exactly
        the scalar :meth:`repro.memory.multiport.MultiPortRAM
        .apply_stream` cycle semantics, lane-parallel.  Structural
        validation (member count vs ports, distinct ports, one write
        per address) is :class:`~repro.sim.ir.OpStream`'s compile-time
        job; the executor re-checks only truncated groups and member
        kinds outside ``w/r/s/ra/wa``.

        Parameters
        ----------
        ops:
            Sequence of op records (usually ``OpStream.ops``).
        tables:
            ``OpStream.tables`` constant-multiplier tables; for ``m == 1``
            (GF(2)) a table can only encode multiply-by-0 or -1.
        model:
            Per-lane fault semantics; None replays healthy lanes.
        detected:
            Initial detected-lane mask (continue a partial campaign).
        stop_when_all_detected:
            Disable to force a full replay even once every lane is
            detected (e.g. to inspect final per-lane memory state).
        captured:
            Optional list collecting the *observed lane column* of every
            ``"s"`` (signature) read as a plain int, in order -- the
            lane-parallel analogue of the scalar executors' per-value
            ``captured`` list (bit ``b * lanes + k`` is bit *b* of the
            value lane *k* observed), identical across backends.  Pass
            ``stop_when_all_detected=False`` when the capture list must
            cover the whole stream.

        Returns ``(detected, executed)``: the final detected-lane mask
        (a plain int on either backend) and the number of operation
        records executed, once per *pass*, not per lane.  Like the
        scalar executors, ``executed`` counts every read and write
        record -- ``"w"``/``"r"``/``"s"`` and the ``"ra"``/``"wa"``
        recurrence ops -- while ``"i"`` idles are free.

        >>> packed = PackedMemoryArray(2, lanes=3)
        >>> packed.apply_stream([("w", 0, 0, 1, None, 0),
        ...                      ("r", 0, 0, None, 1, 0)])
        (0, 2)
        """
        if model is None:
            model = _NO_FAULTS
        if self._backend == "numpy":
            return self._apply_stream_np(ops, tables, model, detected,
                                         stop_when_all_detected, captured)
        if self._m == 1:
            return self._apply_stream_bit(ops, tables, model, detected,
                                          stop_when_all_detected, captured)
        return self._apply_stream_word(ops, tables, model, detected,
                                       stop_when_all_detected, captured)

    def _apply_stream_bit(self, ops, tables, model, detected,
                          stop_when_all_detected, captured):
        """The bit-oriented (m == 1) int executor: one bit per lane."""
        words = self.words
        ones = self._ones
        executed = 0
        accs: dict[int, int] = {}
        transform_write = model.transform_write
        after_write = model.after_write
        # Hoisted flags: read-transparent / settle-free models (the
        # common case) skip the hooks entirely, keeping the checked-read
        # fast path to one XOR per record.
        transform_read = model.transform_read if model.transforms_reads \
            else None
        settle = model.settle if model.settles else None
        clock = model.clock if model.timed else None
        conflicts = model.group_write_conflicts if model.maps_addresses \
            else None
        cycle = 0
        index = 0
        end = len(ops)
        while index < end:
            kind, _port, addr, value, expected, idle = ops[index]
            if kind not in ("w", "wa", "r", "s", "ra", "i", "grp"):
                raise ValueError(f"unknown op kind {kind!r}")
            if clock is not None:
                clock(cycle)
            if kind == "w" or kind == "wa":
                if kind == "w":
                    new = ones if value else 0
                else:
                    new = accs.get(idle, 0) ^ (ones if value else 0)
                    accs[idle] = 0
                old = words[addr]
                new = transform_write(addr, old, new)
                words[addr] = new
                after_write(addr, old, new, self)
                executed += 1
                cycle += 1
            elif kind == "r" or kind == "s":
                executed += 1
                cycle += 1
                observed = words[addr] if transform_read is None \
                    else transform_read(addr, words[addr], _port)
                if kind == "s" and captured is not None:
                    captured.append(observed)
                diff = observed ^ (ones if expected else 0)
                if diff:
                    detected |= diff
                    if detected == ones and stop_when_all_detected:
                        return detected, executed
            elif kind == "ra":
                executed += 1
                cycle += 1
                # Decode the stored-data inversion, then add the lane's
                # recurrence term into its accumulator bit.  In GF(2) the
                # only non-zero multiplier is 1, so the table either
                # passes the difference through or annihilates it.
                observed = words[addr] if transform_read is None \
                    else transform_read(addr, words[addr], _port)
                diff = observed ^ (ones if expected else 0)
                if diff and (value is None or tables[value][1]):
                    accs[idle] = accs.get(idle, 0) ^ diff
            elif kind == "i":
                cycle += idle
            elif kind == "grp":
                count = value
                stop = index + 1 + count
                if stop > end:
                    raise ValueError(
                        f"op {index}: group announces {count} members "
                        f"but the stream slice ends at {end}"
                    )
                if count == 1:
                    # One op in one cycle: the flat handling above is
                    # equivalent and cheaper.
                    index += 1
                    continue
                # Phase A: resolve the stored values ("wa" consumes its
                # accumulator as of the cycle start) and collect the
                # pending writes in member order.
                pending = None
                for member in range(index + 1, stop):
                    rec = ops[member]
                    rkind = rec[0]
                    if rkind in ("r", "s", "ra"):
                        continue
                    if rkind not in ("w", "wa"):
                        raise ValueError(
                            f"cycle {cycle}: {rkind!r} records cannot "
                            "appear inside a cycle group"
                        )
                    if rkind == "w":
                        stored = ones if rec[3] else 0
                    else:
                        acc_id = rec[5]
                        stored = accs.get(acc_id, 0) ^ (ones if rec[3]
                                                        else 0)
                        accs[acc_id] = 0
                    if pending is None:
                        pending = []
                    pending.append((rec[2], stored))
                # Decoder write-write conflicts detect the lane -- the
                # scalar executor raises PortConflictError, which the
                # campaign counts as a detection.
                if pending is not None and conflicts is not None:
                    detected |= conflicts(
                        tuple(waddr for waddr, _ in pending)) & ones
                # Phase B: every read senses the pre-cycle columns.
                for member in range(index + 1, stop):
                    rec = ops[member]
                    rkind = rec[0]
                    if rkind == "w" or rkind == "wa":
                        continue
                    raddr = rec[2]
                    observed = words[raddr] if transform_read is None \
                        else transform_read(raddr, words[raddr], rec[1])
                    diff = observed ^ (ones if rec[4] else 0)
                    if rkind == "ra":
                        if diff and (rec[3] is None or tables[rec[3]][1]):
                            accs[rec[5]] = accs.get(rec[5], 0) ^ diff
                        continue
                    if rkind == "s" and captured is not None:
                        captured.append(observed)
                    if diff:
                        detected |= diff
                # Phase C: commit the writes in member order.  The cycle
                # is atomic, so the all-detected early abort waits until
                # after the commits (matching the scalar executor, whose
                # aborting cycle still completes).
                if pending is not None:
                    for waddr, stored in pending:
                        old = words[waddr]
                        stored = transform_write(waddr, old, stored)
                        words[waddr] = stored
                        after_write(waddr, old, stored, self)
                executed += count
                cycle += 1
                if settle is not None:
                    settle(self)
                if detected == ones and stop_when_all_detected:
                    return detected, executed
                index = stop
                continue
            if settle is not None:
                settle(self)
            index += 1
        return detected, executed

    def _apply_stream_word(self, ops, tables, model, detected,
                           stop_when_all_detected, captured):
        """The word-oriented (m > 1) int executor: m planes per lane.

        Same record semantics as the bit executor with three geometry
        generalisations: write values and read expectations broadcast
        through a per-value column cache, a checked-read mismatch folds
        its column onto the lane mask (any plane differing detects the
        lane), and ``"ra"`` multipliers run their lowered per-plane
        shift/XOR plan (see :meth:`_lower_table`).
        """
        words = self.words
        lanes = self._lanes
        ones = self._ones
        executed = 0
        accs: dict[int, int] = {}
        columns: dict[int, int] = {}  # m-bit value -> broadcast column
        plans: dict[int, list] = {}  # table index -> shift/XOR plan
        broadcast = self.broadcast
        lane_mask = self.lane_mask
        transform_write = model.transform_write
        after_write = model.after_write
        transform_read = model.transform_read if model.transforms_reads \
            else None
        settle = model.settle if model.settles else None
        clock = model.clock if model.timed else None
        conflicts = model.group_write_conflicts if model.maps_addresses \
            else None
        cycle = 0
        index = 0
        end = len(ops)
        while index < end:
            kind, _port, addr, value, expected, idle = ops[index]
            if kind not in ("w", "wa", "r", "s", "ra", "i", "grp"):
                raise ValueError(f"unknown op kind {kind!r}")
            if clock is not None:
                clock(cycle)
            if kind == "w" or kind == "wa":
                new = columns.get(value)
                if new is None:
                    new = columns[value] = broadcast(value)
                if kind == "wa":
                    new ^= accs.get(idle, 0)
                    accs[idle] = 0
                old = words[addr]
                new = transform_write(addr, old, new)
                words[addr] = new
                after_write(addr, old, new, self)
                executed += 1
                cycle += 1
            elif kind == "r" or kind == "s":
                executed += 1
                cycle += 1
                observed = words[addr] if transform_read is None \
                    else transform_read(addr, words[addr], _port)
                if kind == "s" and captured is not None:
                    captured.append(observed)
                expect = columns.get(expected)
                if expect is None:
                    expect = columns[expected] = broadcast(expected)
                diff = observed ^ expect
                if diff:
                    detected |= lane_mask(diff)
                    if detected == ones and stop_when_all_detected:
                        return detected, executed
            elif kind == "ra":
                executed += 1
                cycle += 1
                observed = words[addr] if transform_read is None \
                    else transform_read(addr, words[addr], _port)
                expect = columns.get(expected)
                if expect is None:
                    expect = columns[expected] = broadcast(expected)
                diff = observed ^ expect
                if diff:
                    if value is None:  # multiplier 1: add the raw diff
                        accs[idle] = accs.get(idle, 0) ^ diff
                    else:
                        plan = plans.get(value)
                        if plan is None:
                            plan = plans[value] = \
                                self._lower_table(tables[value])
                        acc = accs.get(idle, 0)
                        for src_shift, dst_shifts in plan:
                            plane = (diff >> src_shift) & ones
                            if plane:
                                for dst_shift in dst_shifts:
                                    acc ^= plane << dst_shift
                        accs[idle] = acc
            elif kind == "i":
                cycle += idle
            elif kind == "grp":
                count = value
                stop = index + 1 + count
                if stop > end:
                    raise ValueError(
                        f"op {index}: group announces {count} members "
                        f"but the stream slice ends at {end}"
                    )
                if count == 1:
                    index += 1
                    continue
                # Phase A: resolve stored values, collect pending writes.
                pending = None
                for member in range(index + 1, stop):
                    rec = ops[member]
                    rkind = rec[0]
                    if rkind in ("r", "s", "ra"):
                        continue
                    if rkind not in ("w", "wa"):
                        raise ValueError(
                            f"cycle {cycle}: {rkind!r} records cannot "
                            "appear inside a cycle group"
                        )
                    stored = columns.get(rec[3])
                    if stored is None:
                        stored = columns[rec[3]] = broadcast(rec[3])
                    if rkind == "wa":
                        acc_id = rec[5]
                        stored ^= accs.get(acc_id, 0)
                        accs[acc_id] = 0
                    if pending is None:
                        pending = []
                    pending.append((rec[2], stored))
                if pending is not None and conflicts is not None:
                    detected |= conflicts(
                        tuple(waddr for waddr, _ in pending)) & ones
                # Phase B: reads sense the pre-cycle columns.
                for member in range(index + 1, stop):
                    rec = ops[member]
                    rkind = rec[0]
                    if rkind == "w" or rkind == "wa":
                        continue
                    raddr = rec[2]
                    observed = words[raddr] if transform_read is None \
                        else transform_read(raddr, words[raddr], rec[1])
                    expect = columns.get(rec[4])
                    if expect is None:
                        expect = columns[rec[4]] = broadcast(rec[4])
                    diff = observed ^ expect
                    if rkind == "ra":
                        if diff:
                            if rec[3] is None:
                                accs[rec[5]] = accs.get(rec[5], 0) ^ diff
                            else:
                                plan = plans.get(rec[3])
                                if plan is None:
                                    plan = plans[rec[3]] = \
                                        self._lower_table(tables[rec[3]])
                                acc = accs.get(rec[5], 0)
                                for src_shift, dst_shifts in plan:
                                    plane = (diff >> src_shift) & ones
                                    if plane:
                                        for dst_shift in dst_shifts:
                                            acc ^= plane << dst_shift
                                accs[rec[5]] = acc
                        continue
                    if rkind == "s" and captured is not None:
                        captured.append(observed)
                    if diff:
                        detected |= lane_mask(diff)
                # Phase C: commit in member order; the cycle is atomic,
                # so the all-detected abort waits for the commits.
                if pending is not None:
                    for waddr, stored in pending:
                        old = words[waddr]
                        stored = transform_write(waddr, old, stored)
                        words[waddr] = stored
                        after_write(waddr, old, stored, self)
                executed += count
                cycle += 1
                if settle is not None:
                    settle(self)
                if detected == ones and stop_when_all_detected:
                    return detected, executed
                index = stop
                continue
            if settle is not None:
                settle(self)
            index += 1
        return detected, executed

    def _apply_stream_np(self, ops, tables, model, detected,
                         stop_when_all_detected, captured):
        """The uint64 block executor (any m): columns are ``(m, W)``
        uint64 arrays, so every record costs a few fixed-width ufunc
        calls regardless of the lane count.

        Record semantics are identical to the int executors (pinned by
        the backend-equality contract tests); the only representational
        differences are that the detection fold is a ``bitwise_or``
        reduction over the plane axis and GF(2^m) plans index planes as
        array rows instead of bit shifts.
        """
        np = _np
        blocks = self._blocks
        m, w = self._m, self._w
        row_ones = self._row_ones
        executed = 0
        accs: dict[int, object] = {}
        columns: dict[int, object] = {}  # m-bit value -> broadcast column
        plans: dict[int, list] = {}  # table index -> per-plane XOR plan
        broadcast = self.broadcast
        transform_write = model.transform_write
        after_write = model.after_write
        transform_read = model.transform_read if model.transforms_reads \
            else None
        settle = model.settle if model.settles else None
        clock = model.clock if model.timed else None
        conflicts = model.group_write_conflicts if model.maps_addresses \
            else None
        cycle = 0
        index = 0
        end = len(ops)
        detected_row = self._row_from_int_np(detected & self._ones)
        while index < end:
            kind, _port, addr, value, expected, idle = ops[index]
            if kind not in ("w", "wa", "r", "s", "ra", "i", "grp"):
                raise ValueError(f"unknown op kind {kind!r}")
            if clock is not None:
                clock(cycle)
            if kind == "w" or kind == "wa":
                new = columns.get(value)
                if new is None:
                    new = columns[value] = broadcast(value)
                if kind == "wa":
                    acc = accs.get(idle)
                    if acc is not None:
                        new = new ^ acc
                        acc[:] = 0  # the scalar executors' reset-to-0
                # The write path needs the pre-write column after the
                # store (after_write's ``old``): blocks[addr] is a view,
                # so snapshot it before the assignment overwrites it.
                old = blocks[addr].copy()
                new = transform_write(addr, old, new)
                blocks[addr] = new
                after_write(addr, old, new, self)
                executed += 1
                cycle += 1
            elif kind == "r" or kind == "s":
                executed += 1
                cycle += 1
                observed = blocks[addr] if transform_read is None \
                    else transform_read(addr, blocks[addr], _port)
                if kind == "s" and captured is not None:
                    captured.append(self.col_to_int(observed))
                expect = columns.get(expected)
                if expect is None:
                    expect = columns[expected] = broadcast(expected)
                diff = np.bitwise_or.reduce(observed ^ expect, axis=0)
                if diff.any():
                    detected_row |= diff
                    if stop_when_all_detected \
                            and np.array_equal(detected_row, row_ones):
                        return self._row_to_int_np(detected_row), executed
            elif kind == "ra":
                executed += 1
                cycle += 1
                observed = blocks[addr] if transform_read is None \
                    else transform_read(addr, blocks[addr], _port)
                expect = columns.get(expected)
                if expect is None:
                    expect = columns[expected] = broadcast(expected)
                diff = observed ^ expect
                if diff.any():
                    acc = accs.get(idle)
                    if acc is None:
                        acc = accs[idle] = np.zeros((m, w),
                                                    dtype=np.uint64)
                    if value is None:  # multiplier 1: add the raw diff
                        acc ^= diff
                    else:
                        plan = plans.get(value)
                        if plan is None:
                            plan = plans[value] = \
                                self._lower_table_planes(tables[value])
                        for src, dst_planes in plan:
                            plane = diff[src]
                            if plane.any():
                                for dst in dst_planes:
                                    acc[dst] ^= plane
            elif kind == "i":
                cycle += idle
            elif kind == "grp":
                count = value
                stop = index + 1 + count
                if stop > end:
                    raise ValueError(
                        f"op {index}: group announces {count} members "
                        f"but the stream slice ends at {end}"
                    )
                if count == 1:
                    index += 1
                    continue
                # Phase A: resolve stored values, collect pending writes.
                pending = None
                for member in range(index + 1, stop):
                    rec = ops[member]
                    rkind = rec[0]
                    if rkind in ("r", "s", "ra"):
                        continue
                    if rkind not in ("w", "wa"):
                        raise ValueError(
                            f"cycle {cycle}: {rkind!r} records cannot "
                            "appear inside a cycle group"
                        )
                    stored = columns.get(rec[3])
                    if stored is None:
                        stored = columns[rec[3]] = broadcast(rec[3])
                    if rkind == "wa":
                        acc = accs.get(rec[5])
                        if acc is not None:
                            stored = stored ^ acc
                            acc[:] = 0
                    if pending is None:
                        pending = []
                    pending.append((rec[2], stored))
                if pending is not None and conflicts is not None:
                    row = conflicts(
                        tuple(waddr for waddr, _ in pending)) & self._ones
                    if row:
                        detected_row |= self._row_from_int_np(row)
                # Phase B: reads sense the pre-cycle columns.
                for member in range(index + 1, stop):
                    rec = ops[member]
                    rkind = rec[0]
                    if rkind == "w" or rkind == "wa":
                        continue
                    raddr = rec[2]
                    observed = blocks[raddr] if transform_read is None \
                        else transform_read(raddr, blocks[raddr], rec[1])
                    expect = columns.get(rec[4])
                    if expect is None:
                        expect = columns[rec[4]] = broadcast(rec[4])
                    diff = observed ^ expect
                    if rkind == "ra":
                        if diff.any():
                            acc = accs.get(rec[5])
                            if acc is None:
                                acc = accs[rec[5]] = np.zeros(
                                    (m, w), dtype=np.uint64)
                            if rec[3] is None:
                                acc ^= diff
                            else:
                                plan = plans.get(rec[3])
                                if plan is None:
                                    plan = plans[rec[3]] = \
                                        self._lower_table_planes(
                                            tables[rec[3]])
                                for src, dst_planes in plan:
                                    plane = diff[src]
                                    if plane.any():
                                        for dst in dst_planes:
                                            acc[dst] ^= plane
                        continue
                    if rkind == "s" and captured is not None:
                        captured.append(self.col_to_int(observed))
                    fold = np.bitwise_or.reduce(diff, axis=0)
                    if fold.any():
                        detected_row |= fold
                # Phase C: commit in member order; the cycle is atomic,
                # so the all-detected abort waits for the commits.
                if pending is not None:
                    for waddr, stored in pending:
                        old = blocks[waddr].copy()
                        stored = transform_write(waddr, old, stored)
                        blocks[waddr] = stored
                        after_write(waddr, old, stored, self)
                executed += count
                cycle += 1
                if settle is not None:
                    settle(self)
                if stop_when_all_detected \
                        and np.array_equal(detected_row, row_ones):
                    return self._row_to_int_np(detected_row), executed
                index = stop
                continue
            if settle is not None:
                settle(self)
            index += 1
        return self._row_to_int_np(detected_row), executed

    def _lower_table(self, table) -> list[tuple[int, list[int]]]:
        """Per-plane shift/XOR plan of one constant-multiplier table.

        GF(2^m) multiplication by a constant is linear over GF(2), so
        ``table[x]`` is the XOR over the set bits *i* of ``x`` of the
        basis images ``table[1 << i]``.  The plan lists, for every input
        plane *i* that contributes at all, the output-plane shifts its
        lanes XOR into -- applying a multiplier to a whole column is
        then at most m x m big-int ops, independent of the lane count.
        """
        lanes = self._lanes
        plan: list[tuple[int, list[int]]] = []
        for src in range(self._m):
            column = table[1 << src]
            dst_shifts = [dst * lanes for dst in range(self._m)
                          if (column >> dst) & 1]
            if dst_shifts:
                plan.append((src * lanes, dst_shifts))
        return plan

    def _lower_table_planes(self, table) -> list[tuple[int, tuple[int, ...]]]:
        """:meth:`_lower_table` with plane *indices* instead of bit
        shifts -- the numpy executor addresses planes as array rows."""
        plan: list[tuple[int, tuple[int, ...]]] = []
        for src in range(self._m):
            image = table[1 << src]
            dst_planes = tuple(dst for dst in range(self._m)
                               if (image >> dst) & 1)
            if dst_planes:
                plan.append((src, dst_planes))
        return plan


_NO_FAULTS = LaneFaultModel()
