"""Plane-packed memory backend: one int word per address, one lane per fault.

:class:`PackedMemoryArray` models ``lanes`` independent memory copies of
``n`` cells by ``m`` bits at once.  Word ``words[addr]`` is a plain
Python int used as a *plane-major column* of ``m * lanes`` bits: bit
``b * lanes + k`` holds bit *b* of the value cell ``addr`` has in the
*k*-th memory copy.  A bit-oriented geometry (``m == 1``) degenerates to
the classic one-bit-per-lane mask layout.  Because every copy replays
the *same* compiled operation sequence (an :class:`~repro.sim.ir
.OpStream`) and differs only in which fault is injected, a whole fault
class -- same mask algebra, different fault site per lane -- executes in
one pass over the stream:

* a constant write broadcasts its m-bit value to all lanes (the
  :meth:`PackedMemoryArray.broadcast` column),
* a checked read XORs the word with the broadcast expectation; any lane
  with a non-zero bit in *any* plane is a *detection in that lane*,
* pi-test accumulator ops (``"ra"``/``"wa"``) keep one m-bit accumulator
  *column per accumulator id*, so data corrupted by a fault propagates
  through the pseudo-ring exactly as it would in that lane's dedicated
  replay.  GF(2^m) constant multiplication is linear over GF(2), so a
  precompiled lookup table lowers to a per-plane shift/XOR plan -- a
  handful of big-int operations per record, not per lane.

Per-lane fault semantics plug in through :class:`LaneFaultModel`: the
executor calls ``transform_write`` / ``after_write`` / ``settle`` with
lane columns, and a model implements e.g. stuck-at-1 on bit *b* as
``new |= sa1_mask[addr]`` with the mask positioned in plane *b* -- one
big-int OR applies the fault to hundreds of lanes at once.  Models are
built from :meth:`repro.faults.base.Fault.vector_semantics` descriptors
by :mod:`repro.sim.batched`, which also owns universe partitioning and
the per-fault fallback.

Cycle-grouped (multi-port) streams remain outside the packed contract;
the batched engine delegates those campaigns to the scalar path.
"""

from __future__ import annotations

__all__ = ["PackedMemoryArray", "LaneFaultModel"]


class LaneFaultModel:
    """Per-lane fault semantics applied as mask operations.

    The default implementation is a no-op (all lanes healthy).  Concrete
    models (:mod:`repro.sim.batched`) override the hooks they need; each
    hook receives and returns plain-int lane columns (plane-major, see
    the module docstring -- for ``m == 1`` a column is simply a lane
    mask).
    """

    #: Set True by models that override :meth:`transform_read` (e.g. the
    #: stuck-open sense-latch model).  The executor checks the flag once
    #: per pass so the common read-transparent models pay nothing on the
    #: read hot path.
    transforms_reads = False

    #: Set True by models that override :meth:`settle` (e.g. the state
    #: coupling model).  Mirrors the scalar engine's settle fast path
    #: (:class:`repro.faults.injector.FaultInjector` only visits faults
    #: that override ``settle``): the executor checks the flag once per
    #: pass and most models pay nothing per record.
    settles = False

    def install(self, memory: "PackedMemoryArray") -> None:
        """Force the initial state (e.g. stuck-at-1 lanes start at 1).
        Called once, before the first operation.  Default: nothing."""

    def transform_read(self, addr: int, sensed: int) -> int:
        """Lane column actually *observed* when reading ``addr`` whose
        stored column is ``sensed`` (read-side state such as a sense
        latch lives in the model).  Only consulted when
        :attr:`transforms_reads` is True.  Default: faithful."""
        return sensed

    def transform_write(self, addr: int, old: int, new: int) -> int:
        """Lane column actually stored when writing ``new`` over ``old``
        at ``addr``.  Default: faithful."""
        return new

    def after_write(self, addr: int, old: int, committed: int,
                    memory: "PackedMemoryArray") -> None:
        """React to the committed write ``old -> committed`` at ``addr``
        (coupling models corrupt their victims here).  Default: nothing."""

    def settle(self, memory: "PackedMemoryArray") -> None:
        """Enforce steady-state conditions after each executed record --
        the lane-parallel analogue of :meth:`repro.faults.base.Fault
        .settle`, which the scalar engines run after every memory cycle
        (state coupling enforces its condition here).  Only consulted
        when :attr:`settles` is True.  Default: nothing."""


class PackedMemoryArray:
    """``n`` addresses x ``lanes`` independent ``m``-bit memory copies.

    Parameters
    ----------
    n:
        Number of addresses (cells) per memory copy.
    lanes:
        Number of parallel copies; each compiled-stream replay resolves
        one fault per lane.
    m:
        Bits per cell (1 = bit-oriented, the default).  Word-oriented
        copies store bit *b* of a cell in plane *b* of the column
        (bits ``[b * lanes, (b + 1) * lanes)``).

    Examples
    --------
    >>> packed = PackedMemoryArray(4, lanes=8)
    >>> packed.write_lanes(2, 0b1010_1010)
    >>> packed.lane_value(2, 1)
    1
    >>> packed.lane_value(2, 2)
    0
    >>> bin(packed.ones)
    '0b11111111'

    A word-oriented geometry packs one plane per bit:

    >>> wom = PackedMemoryArray(4, lanes=2, m=4)
    >>> wom.write_lanes(0, wom.broadcast(0b1010))
    >>> wom.lane_value(0, 0), wom.lane_value(0, 1)
    (10, 10)
    """

    __slots__ = ("_n", "_lanes", "_m", "_ones", "_full", "words")

    def __init__(self, n: int, lanes: int, m: int = 1):
        if n < 1:
            raise ValueError(f"memory needs at least one cell, got n={n}")
        if lanes < 1:
            raise ValueError(f"need at least one lane, got {lanes}")
        if m < 1:
            raise ValueError(f"cells need at least one bit, got m={m}")
        self._n = n
        self._lanes = lanes
        self._m = m
        self._ones = (1 << lanes) - 1
        self._full = (1 << (m * lanes)) - 1
        self.words: list[int] = [0] * n

    # -- geometry --------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of addresses per memory copy."""
        return self._n

    @property
    def lanes(self) -> int:
        """Number of parallel memory copies."""
        return self._lanes

    @property
    def m(self) -> int:
        """Bits per cell (planes per column)."""
        return self._m

    @property
    def ones(self) -> int:
        """The all-lanes *plane* mask, ``(1 << lanes) - 1``."""
        return self._ones

    @property
    def full(self) -> int:
        """The all-planes all-lanes column mask, ``(1 << m*lanes) - 1``."""
        return self._full

    def __repr__(self) -> str:
        m = f", m={self._m}" if self._m != 1 else ""
        return f"PackedMemoryArray(n={self._n}, lanes={self._lanes}{m})"

    # -- access ----------------------------------------------------------------

    def broadcast(self, value: int) -> int:
        """The column storing m-bit ``value`` in every lane.

        >>> PackedMemoryArray(2, lanes=4, m=2).broadcast(0b10)
        240
        """
        if not 0 <= value < (1 << self._m):
            raise ValueError(
                f"value {value!r} does not fit an m={self._m}-bit cell"
            )
        if self._m == 1:
            return self._ones if value else 0
        column = 0
        shift = 0
        lanes = self._lanes
        ones = self._ones
        while value:
            if value & 1:
                column |= ones << shift
            value >>= 1
            shift += lanes
        return column

    def lane_mask(self, column: int) -> int:
        """Collapse a column to a lane mask: lane *k* is set when *any*
        plane of lane *k* is set in ``column`` (the detection fold).

        >>> PackedMemoryArray(2, lanes=4, m=2).lane_mask(0b0001_1000)
        9
        """
        lanes = self._lanes
        mask = column & self._ones
        rest = column >> lanes
        while rest:
            mask |= rest & self._ones
            rest >>= lanes
        return mask

    def read_lanes(self, addr: int) -> int:
        """The lane column stored at ``addr``."""
        return self.words[addr]

    def write_lanes(self, addr: int, mask: int) -> None:
        """Replace the lane column stored at ``addr``."""
        self.words[addr] = mask & self._full

    def lane_value(self, addr: int, lane: int) -> int:
        """The m-bit value cell ``addr`` holds in copy ``lane``."""
        if not 0 <= lane < self._lanes:
            raise IndexError(f"lane {lane} out of range [0, {self._lanes})")
        column = self.words[addr] >> lane
        if self._m == 1:
            return column & 1
        value = 0
        for bit in range(self._m):
            value |= ((column >> (bit * self._lanes)) & 1) << bit
        return value

    def dump_lane(self, lane: int) -> list[int]:
        """Snapshot of one memory copy's cells (for debugging/tests)."""
        if not 0 <= lane < self._lanes:
            raise IndexError(f"lane {lane} out of range [0, {self._lanes})")
        return [self.lane_value(addr, lane) for addr in range(self._n)]

    # -- bulk replay -----------------------------------------------------------

    def apply_stream(self, ops, tables=(), model: LaneFaultModel | None = None,
                     detected: int = 0,
                     stop_when_all_detected: bool = True,
                     captured: list | None = None) -> tuple[int, int]:
        """Replay compiled op records against every lane simultaneously.

        Executes the :mod:`repro.sim` IR (records
        ``(kind, port, addr, value, expected, idle)``, see
        :mod:`repro.sim.ir`) lane-parallel.  Values and expectations
        broadcast to all lanes; ``model`` applies per-lane fault
        semantics.  A checked read that mismatches its expectation in
        lane *k* (in any bit plane) marks lane *k* detected; replay
        stops early once *every* lane is detected (the batched analogue
        of the scalar engine's first-mismatch abort -- later mismatches
        cannot change any verdict because detection is monotone).

        ``"ra"``/``"wa"`` accumulator ops keep one m-bit accumulator
        column *per accumulator id* (the record's sixth slot, exactly
        like the scalar executors' per-id dicts), so recurrence write
        data is recomputed from each lane's actual (possibly corrupted)
        reads -- the scalar replay semantics, lane-parallel.  GF(2^m)
        constant multipliers lower each ``OpStream.tables`` entry to a
        per-plane shift/XOR plan once per pass (multiplication by a
        constant is GF(2)-linear), so a multiply costs a handful of
        big-int ops per record.  ``"i"`` idles are no-ops apart from the
        model's ``settle`` hook: every vectorizable fault model is
        timing-independent (retention faults take the per-fault path).

        Parameters
        ----------
        ops:
            Sequence of op records (usually ``OpStream.ops``).
        tables:
            ``OpStream.tables`` constant-multiplier tables; for ``m == 1``
            (GF(2)) a table can only encode multiply-by-0 or -1.
        model:
            Per-lane fault semantics; None replays healthy lanes.
        detected:
            Initial detected-lane mask (continue a partial campaign).
        stop_when_all_detected:
            Disable to force a full replay even once every lane is
            detected (e.g. to inspect final per-lane memory state).
        captured:
            Optional list collecting the *observed lane column* of every
            ``"s"`` (signature) read, in order -- the lane-parallel
            analogue of the scalar executors' per-value ``captured``
            list (bit ``b * lanes + k`` is bit *b* of the value lane *k*
            observed).  Pass ``stop_when_all_detected=False`` when the
            capture list must cover the whole stream.

        Returns ``(detected, executed)``: the final detected-lane mask
        and the number of operation records executed, once per *pass*,
        not per lane.  Like the scalar executors, ``executed`` counts
        every read and write record -- ``"w"``/``"r"``/``"s"`` and the
        ``"ra"``/``"wa"`` recurrence ops -- while ``"i"`` idles are free.

        >>> packed = PackedMemoryArray(2, lanes=3)
        >>> packed.apply_stream([("w", 0, 0, 1, None, 0),
        ...                      ("r", 0, 0, None, 1, 0)])
        (0, 2)
        """
        if model is None:
            model = _NO_FAULTS
        if self._m == 1:
            return self._apply_stream_bit(ops, tables, model, detected,
                                          stop_when_all_detected, captured)
        return self._apply_stream_word(ops, tables, model, detected,
                                       stop_when_all_detected, captured)

    def _apply_stream_bit(self, ops, tables, model, detected,
                          stop_when_all_detected, captured):
        """The bit-oriented (m == 1) executor: one bit per lane."""
        words = self.words
        ones = self._ones
        executed = 0
        accs: dict[int, int] = {}
        transform_write = model.transform_write
        after_write = model.after_write
        # Hoisted flags: read-transparent / settle-free models (the
        # common case) skip the hooks entirely, keeping the checked-read
        # fast path to one XOR per record.
        transform_read = model.transform_read if model.transforms_reads \
            else None
        settle = model.settle if model.settles else None
        for kind, _port, addr, value, expected, idle in ops:
            if kind == "w" or kind == "wa":
                if kind == "w":
                    new = ones if value else 0
                else:
                    new = accs.get(idle, 0) ^ (ones if value else 0)
                    accs[idle] = 0
                old = words[addr]
                new = transform_write(addr, old, new)
                words[addr] = new
                after_write(addr, old, new, self)
                executed += 1
            elif kind == "r" or kind == "s":
                executed += 1
                observed = words[addr] if transform_read is None \
                    else transform_read(addr, words[addr])
                if kind == "s" and captured is not None:
                    captured.append(observed)
                diff = observed ^ (ones if expected else 0)
                if diff:
                    detected |= diff
                    if detected == ones and stop_when_all_detected:
                        return detected, executed
            elif kind == "ra":
                executed += 1
                # Decode the stored-data inversion, then add the lane's
                # recurrence term into its accumulator bit.  In GF(2) the
                # only non-zero multiplier is 1, so the table either
                # passes the difference through or annihilates it.
                observed = words[addr] if transform_read is None \
                    else transform_read(addr, words[addr])
                diff = observed ^ (ones if expected else 0)
                if diff and (value is None or tables[value][1]):
                    accs[idle] = accs.get(idle, 0) ^ diff
            elif kind == "i":
                pass
            elif kind == "grp":
                raise ValueError(
                    "cycle-grouped streams are outside the packed "
                    "backend's contract (the batched engine delegates "
                    "multi-port campaigns to the scalar path)"
                )
            else:
                raise ValueError(f"unknown op kind {kind!r}")
            if settle is not None:
                settle(self)
        return detected, executed

    def _apply_stream_word(self, ops, tables, model, detected,
                           stop_when_all_detected, captured):
        """The word-oriented (m > 1) executor: m planes per lane.

        Same record semantics as the bit executor with three geometry
        generalisations: write values and read expectations broadcast
        through a per-value column cache, a checked-read mismatch folds
        its column onto the lane mask (any plane differing detects the
        lane), and ``"ra"`` multipliers run their lowered per-plane
        shift/XOR plan (see :meth:`_lower_table`).
        """
        words = self.words
        lanes = self._lanes
        ones = self._ones
        executed = 0
        accs: dict[int, int] = {}
        columns: dict[int, int] = {}  # m-bit value -> broadcast column
        plans: dict[int, list] = {}  # table index -> shift/XOR plan
        broadcast = self.broadcast
        lane_mask = self.lane_mask
        transform_write = model.transform_write
        after_write = model.after_write
        transform_read = model.transform_read if model.transforms_reads \
            else None
        settle = model.settle if model.settles else None
        for kind, _port, addr, value, expected, idle in ops:
            if kind == "w" or kind == "wa":
                new = columns.get(value)
                if new is None:
                    new = columns[value] = broadcast(value)
                if kind == "wa":
                    new ^= accs.get(idle, 0)
                    accs[idle] = 0
                old = words[addr]
                new = transform_write(addr, old, new)
                words[addr] = new
                after_write(addr, old, new, self)
                executed += 1
            elif kind == "r" or kind == "s":
                executed += 1
                observed = words[addr] if transform_read is None \
                    else transform_read(addr, words[addr])
                if kind == "s" and captured is not None:
                    captured.append(observed)
                expect = columns.get(expected)
                if expect is None:
                    expect = columns[expected] = broadcast(expected)
                diff = observed ^ expect
                if diff:
                    detected |= lane_mask(diff)
                    if detected == ones and stop_when_all_detected:
                        return detected, executed
            elif kind == "ra":
                executed += 1
                observed = words[addr] if transform_read is None \
                    else transform_read(addr, words[addr])
                expect = columns.get(expected)
                if expect is None:
                    expect = columns[expected] = broadcast(expected)
                diff = observed ^ expect
                if diff:
                    if value is None:  # multiplier 1: add the raw diff
                        accs[idle] = accs.get(idle, 0) ^ diff
                    else:
                        plan = plans.get(value)
                        if plan is None:
                            plan = plans[value] = \
                                self._lower_table(tables[value])
                        acc = accs.get(idle, 0)
                        for src_shift, dst_shifts in plan:
                            plane = (diff >> src_shift) & ones
                            if plane:
                                for dst_shift in dst_shifts:
                                    acc ^= plane << dst_shift
                        accs[idle] = acc
            elif kind == "i":
                pass
            elif kind == "grp":
                raise ValueError(
                    "cycle-grouped streams are outside the packed "
                    "backend's contract (the batched engine delegates "
                    "multi-port campaigns to the scalar path)"
                )
            else:
                raise ValueError(f"unknown op kind {kind!r}")
            if settle is not None:
                settle(self)
        return detected, executed

    def _lower_table(self, table) -> list[tuple[int, list[int]]]:
        """Per-plane shift/XOR plan of one constant-multiplier table.

        GF(2^m) multiplication by a constant is linear over GF(2), so
        ``table[x]`` is the XOR over the set bits *i* of ``x`` of the
        basis images ``table[1 << i]``.  The plan lists, for every input
        plane *i* that contributes at all, the output-plane shifts its
        lanes XOR into -- applying a multiplier to a whole column is
        then at most m x m big-int shift/XORs, independent of the lane
        count.
        """
        lanes = self._lanes
        plan: list[tuple[int, list[int]]] = []
        for src in range(self._m):
            column = table[1 << src]
            dst_shifts = [dst * lanes for dst in range(self._m)
                          if (column >> dst) & 1]
            if dst_shifts:
                plan.append((src * lanes, dst_shifts))
        return plan


_NO_FAULTS = LaneFaultModel()
