"""Address scrambling: the logical-to-topological address map.

Real memories do not place logically adjacent addresses in physically
adjacent cells: row/column decoders permute and fold the address bits
("address scrambling").  Adjacency-based fault models (coupling between
neighbours, NPSF neighbourhoods) are defined on *physical* cells, so a
test walking logical addresses sweeps physical space in scrambled order.

:class:`AddressScrambler` models the standard hardware forms -- an XOR
mask plus a permutation of the address bits -- both of which are
bijections cheap enough to sit in the decode path.  The RAM front-ends
apply the scrambler before the decoder; for the pseudo-ring test a
scrambled walk is simply a different trajectory, so PRT's guarantees
survive scrambling unchanged (tested in the suite).
"""

from __future__ import annotations

__all__ = ["AddressScrambler"]


class AddressScrambler:
    """Bijective address transform: bit permutation then XOR mask.

    Parameters
    ----------
    bits:
        Address width; the scrambler acts on ``range(2**bits)``.
    xor_mask:
        XORed into the (permuted) address -- models inverted decoder
        select lines.
    bit_permutation:
        ``bit_permutation[i]`` is the source bit of output bit ``i`` --
        models swapped row/column address lines.  Default identity.

    Examples
    --------
    >>> scrambler = AddressScrambler(3, xor_mask=0b001)
    >>> [scrambler.map(a) for a in range(8)]
    [1, 0, 3, 2, 5, 4, 7, 6]
    >>> swap = AddressScrambler(3, bit_permutation=(1, 0, 2))
    >>> swap.map(0b001), swap.map(0b010)
    (2, 1)
    """

    def __init__(self, bits: int, xor_mask: int = 0,
                 bit_permutation: tuple[int, ...] | None = None):
        if bits < 1:
            raise ValueError(f"address width must be >= 1 bit, got {bits}")
        self._bits = bits
        self._size = 1 << bits
        if not 0 <= xor_mask < self._size:
            raise ValueError(
                f"xor mask {xor_mask:#x} does not fit {bits} address bits"
            )
        if bit_permutation is None:
            bit_permutation = tuple(range(bits))
        else:
            bit_permutation = tuple(bit_permutation)
            if sorted(bit_permutation) != list(range(bits)):
                raise ValueError(
                    f"bit permutation must be a permutation of range({bits})"
                )
        self._xor_mask = xor_mask
        self._permutation = bit_permutation

    @property
    def bits(self) -> int:
        """Address width."""
        return self._bits

    @property
    def size(self) -> int:
        """Number of addresses, ``2**bits``."""
        return self._size

    @property
    def is_identity(self) -> bool:
        """True when the scrambler changes nothing."""
        return (self._xor_mask == 0
                and self._permutation == tuple(range(self._bits)))

    def map(self, addr: int) -> int:
        """Logical address -> physical (topological) address."""
        if not 0 <= addr < self._size:
            raise IndexError(f"address {addr} out of range [0, {self._size})")
        permuted = 0
        for out_bit, src_bit in enumerate(self._permutation):
            if (addr >> src_bit) & 1:
                permuted |= 1 << out_bit
        return permuted ^ self._xor_mask

    def inverse_map(self, physical: int) -> int:
        """Physical address -> the logical address selecting it.

        >>> scrambler = AddressScrambler(4, xor_mask=0b0110,
        ...                              bit_permutation=(2, 3, 0, 1))
        >>> all(scrambler.inverse_map(scrambler.map(a)) == a
        ...     for a in range(16))
        True
        """
        if not 0 <= physical < self._size:
            raise IndexError(
                f"address {physical} out of range [0, {self._size})"
            )
        unmasked = physical ^ self._xor_mask
        logical = 0
        for out_bit, src_bit in enumerate(self._permutation):
            if (unmasked >> out_bit) & 1:
                logical |= 1 << src_bit
        return logical

    def mapping(self) -> list[int]:
        """The full logical->physical table (for tests and displays)."""
        return [self.map(a) for a in range(self._size)]

    def __repr__(self) -> str:
        if self.is_identity:
            return f"AddressScrambler({self._bits} bits, identity)"
        return (
            f"AddressScrambler({self._bits} bits, mask={self._xor_mask:#x}, "
            f"perm={self._permutation})"
        )
