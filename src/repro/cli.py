"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``selftest``   run a PRT schedule on a simulated memory (optionally with
               an injected fault) and report the verdict,
``march``      run a March test given in formal notation,
``coverage``   single-fault-injection coverage campaign for one test,
``verify``     statically verify a test's compiled stream (no execution),
``compare``    the March-vs-PRT comparison table (experiment E9),
``overhead``   the BIST hardware-overhead sweep (experiment E5).

Examples
--------
::

    python -m repro selftest --n 255 --m 4 --schedule standard
    python -m repro selftest --n 28 --inject SAF:5:1
    python -m repro march --notation "{c(w0); u(r0,w1); d(r1,w0)}" --n 64
    python -m repro coverage --n 28 --test prt3
    python -m repro coverage --n 64 --scheme dual-port
    python -m repro verify --n 64 --test march-c
    python -m repro verify --n 64 --scheme quad-port --json
    python -m repro coverage --n 64 --scheme quad-port --workers 2
    python -m repro coverage --n 64 --scheme dual-schedule
    python -m repro compare --n 28
    python -m repro overhead --ports 2
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import (
    CampaignRequest,
    RequestError,
    compare_tests,
    execute_request,
    resolve_campaign,
)
from repro.analysis.request import build_field as _build_field
from repro.faults import (
    DataRetentionFault,
    FaultInjector,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
)
from repro.gf2m import GF2m
from repro.march import parse_march, run_march
from repro.memory import SinglePortRAM
from repro.prt import (
    BistOverheadModel,
    extended_schedule,
    standard_schedule,
)

__all__ = ["main"]


def _parse_fault(spec: str):
    """Parse ``CLASS:args`` fault specs, e.g. ``SAF:5:1`` (cell 5 stuck at
    1), ``TF:3:up``, ``SOF:7``, ``DRF:2:100``."""
    parts = spec.split(":")
    kind = parts[0].upper()
    try:
        if kind == "SAF":
            return StuckAtFault(int(parts[1]), int(parts[2]))
        if kind == "TF":
            return TransitionFault(int(parts[1]), rising=parts[2] == "up")
        if kind == "SOF":
            return StuckOpenFault(int(parts[1]))
        if kind == "DRF":
            return DataRetentionFault(int(parts[1]), retention=int(parts[2]))
    except (IndexError, ValueError) as exc:
        raise argparse.ArgumentTypeError(
            f"bad fault spec {spec!r}: {exc}") from exc
    raise argparse.ArgumentTypeError(
        f"unknown fault class {kind!r} (use SAF/TF/SOF/DRF)"
    )


def _schedule_for(args, n: int):
    field = _build_field(args.m, args.poly)
    builder = standard_schedule if args.schedule == "standard" else extended_schedule
    return builder(field=field, n=n, verify=not args.pure,
                   **({"pause_between": args.pause} if args.pause else {}))


def _cmd_selftest(args) -> int:
    ram = SinglePortRAM(args.n, m=args.m)
    injector = None
    if args.inject:
        injector = FaultInjector([_parse_fault(args.inject)])
        injector.install(ram)
        print(f"injected: {injector.faults[0].name}")
    schedule = _schedule_for(args, args.n)
    result = schedule.run(ram)
    print(f"schedule : {schedule.name} ({len(schedule)} iterations, "
          f"{'pure' if args.pure else 'verifying'})")
    print(f"memory   : {args.n} cells x {args.m} bit(s)")
    print(f"operations: {result.operations}")
    for index, it_result in enumerate(result.iteration_results):
        status = "PASS" if it_result.passed else "FAIL"
        print(f"  iteration {index}: {status}  Fin={it_result.final_state} "
              f"Fin*={it_result.expected_final} "
              f"verify_mismatches={it_result.verify_mismatches}")
    verdict = "MEMORY OK" if result.passed else "FAULT DETECTED"
    print(f"verdict  : {verdict}")
    if injector is not None:
        injector.remove(ram)
    return 0 if result.passed == (args.inject is None) else 1


def _cmd_march(args) -> int:
    test = parse_march(args.notation, name="cli")
    ram = SinglePortRAM(args.n, m=args.m)
    injector = None
    if args.inject:
        injector = FaultInjector([_parse_fault(args.inject)])
        injector.install(ram)
        print(f"injected: {injector.faults[0].name}")
    result = run_march(test, ram)
    print(f"test      : {test}   ({test.ops_per_cell}n)")
    print(f"operations: {result.operations}")
    print(f"verdict   : {'MEMORY OK' if result.passed else 'FAULT DETECTED'}")
    for background, element, addr, expected, actual in result.failures[:10]:
        print(f"  bg={background:#x} element={element} addr={addr} "
              f"expected={expected} read={actual}")
    if injector is not None:
        injector.remove(ram)
    return 0 if result.passed == (args.inject is None) else 1


def _coverage_request(args) -> CampaignRequest:
    """The canonical request for a ``coverage`` invocation.

    ``--scheme`` (when not ``single``) and ``--test`` are both just
    selectors on the shared request surface; all further validation --
    odd-``n`` quad schemes, bad polynomials -- happens in
    :func:`~repro.analysis.request.resolve_campaign`, the same resolver
    behind ``run_coverage(request)`` and the :mod:`repro.server` API.
    """
    if args.interpreted and args.engine not in ("auto", "interpreted"):
        raise SystemExit(
            "error: --interpreted conflicts with --engine "
            f"{args.engine!r}; use --engine interpreted"
        )
    engine = "interpreted" if args.interpreted else args.engine
    selector = args.test if args.scheme == "single" else args.scheme
    return CampaignRequest(
        test=selector, n=args.n, m=args.m, engine=engine,
        workers=args.workers, pure=args.pure, poly=args.poly,
    )


def _resolve_or_exit(request: CampaignRequest):
    """Resolve, translating :class:`RequestError` to CLI conventions.

    The quad-scheme geometry error keeps its historical ``--n`` wording
    and ``SystemExit``; everything else prints ``error: ...`` to stderr
    and exits 2 (the same code argparse uses for bad flag values).
    """
    try:
        return resolve_campaign(request)
    except RequestError as exc:
        if "even n >= 6" in str(exc):
            raise SystemExit(
                f"error: --scheme {request.test} needs an even --n >= 6 "
                f"(two concurrent half-array automata), got {request.n}"
            ) from None
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _cmd_coverage(args) -> int:
    request = _coverage_request(args)
    resolved = _resolve_or_exit(request)
    outcome = execute_request(request)
    if args.json:
        from repro.server.schemas import coverage_response

        print(json.dumps(coverage_response(request, outcome), indent=2))
        return 0
    report = outcome.report
    print(f"test    : {resolved.test_name}")
    if args.scheme != "single":
        ports = resolved.runner.ports
        if args.scheme.endswith("-schedule"):
            cycles = resolved.compile().replay_cycles
            print(f"scheme  : {args.scheme} ({ports} ports, "
                  f"{cycles} cycles per schedule)")
        else:
            cycles = 2 * args.n + 2 if ports == 2 else args.n + 2
            print(f"scheme  : {args.scheme} ({ports} ports, "
                  f"{cycles} cycles per pass)")
    print(f"universe: {resolved.build_universe()!r}")
    print(f"{'class':>6} {'detected':>9} {'total':>6} {'coverage':>9}")
    for fault_class, detected, total, ratio in report.rows():
        print(f"{fault_class:>6} {detected:>9} {total:>6} {ratio:>9.1%}")
    print(f"overall : {report.overall:.1%}")
    return 0


def _cmd_verify(args) -> int:
    """Statically verify the compiled stream of one test selector.

    Exit code 0 when the stream carries no error-severity diagnostic
    (warnings -- dataflow dead weight -- are reported but never fail),
    1 otherwise.
    """
    from repro.sim.verify import verify

    selector = args.test if args.scheme == "single" else args.scheme
    request = CampaignRequest(test=selector, n=args.n, m=args.m,
                              pure=args.pure, poly=args.poly)
    resolved = _resolve_or_exit(request)
    stream = resolved.compile()
    report = verify(stream, dataflow=not args.no_dataflow)
    if args.json:
        from repro.server.schemas import verify_response

        print(json.dumps(verify_response(request, stream, report), indent=2))
        return 0 if report.ok else 1
    errors, warnings = report.errors, report.warnings
    print(f"stream  : {stream.name} ({stream.source}, n={stream.n}, "
          f"m={stream.m}, ports={stream.ports}, {len(stream)} records)")
    print(f"digest  : {stream.digest()}")
    verdict = "OK" if report.ok else "REJECTED"
    print(f"verdict : {verdict} ({len(errors)} error(s), "
          f"{len(warnings)} warning(s))")
    for diagnostic in report.diagnostics:
        print(f"  {diagnostic.severity:>7} {diagnostic}")
    return 0 if report.ok else 1


_COMPARE_TESTS = ("prt3", "prt5", "mats+", "march-c", "march-b")


def _cmd_compare(args) -> int:
    requests = [
        CampaignRequest(test=test, n=args.n, m=args.m,
                        workers=args.workers, poly=args.poly)
        for test in _COMPARE_TESTS
    ]
    for request in requests:
        _resolve_or_exit(request)
    rows = compare_tests(requests)
    if args.json:
        from repro.server.schemas import compare_response

        print(json.dumps(compare_response(requests, rows), indent=2))
        return 0
    classes = rows[0].report.classes
    header = f"{'test':>10} {'ops/cell':>9} {'overall':>8}"
    for c in classes:
        header += f" {c:>5}"
    print(header)
    for row in rows:
        line = f"{row.name:>10} {row.ops_per_cell:>9.1f} {row.overall:>8.1%}"
        for c in classes:
            line += f" {row.coverage(c):>5.0%}"
        print(line)
    return 0


def _cmd_overhead(args) -> int:
    field = _build_field(args.m, args.poly) or GF2m(0b11)
    generator = (1, 2, 2) if field.m >= 2 else (1, 1, 1)
    model = BistOverheadModel(field, generator, ports=args.ports)
    print(f"field GF(2^{field.m}), {args.ports} port(s)")
    print(f"{'capacity':>10} {'ratio':>12} {'< 2^-20':>8}")
    for log2n in range(10, 31, 2):
        ratio = model.overhead_ratio(1 << log2n)
        print(f"  2^{log2n:<6} {ratio:>12.3e} "
              f"{'yes' if ratio < 2**-20 else 'no':>8}")
    crossover = model.crossover_capacity()
    print(f"crossover: n = 2^{crossover.bit_length() - 1}")
    return 0


def _add_memory_args(parser, default_n=255, default_m=1):
    parser.add_argument("--n", type=int, default=default_n,
                        help="number of cells")
    parser.add_argument("--m", type=int, default=default_m,
                        help="bits per cell (1 = bit-oriented)")
    parser.add_argument("--poly", type=str, default=None,
                        help='field modulus, e.g. "1+z+z^4" (default: '
                             "tabulated primitive polynomial)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pseudo-ring RAM self-test (DATE 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("selftest", help="run a PRT schedule")
    _add_memory_args(p)
    p.add_argument("--schedule", choices=("standard", "extended"),
                   default="standard")
    p.add_argument("--pure", action="store_true",
                   help="paper-exact signature-only mode (no verification)")
    p.add_argument("--pause", type=int, default=0,
                   help="idle cycles between iterations (retention testing)")
    p.add_argument("--inject", type=str, default=None,
                   help="fault spec, e.g. SAF:5:1, TF:3:up, SOF:7, DRF:2:100")
    p.set_defaults(func=_cmd_selftest)

    p = sub.add_parser("march", help="run a March test from notation")
    _add_memory_args(p, default_n=64)
    p.add_argument("--notation", type=str, required=True,
                   help='e.g. "{c(w0); u(r0,w1); d(r1,w0)}"')
    p.add_argument("--inject", type=str, default=None)
    p.set_defaults(func=_cmd_march)

    p = sub.add_parser("coverage", help="fault-coverage campaign")
    _add_memory_args(p, default_n=28)
    p.add_argument("--test",
                   choices=("prt3", "prt5", "mats+", "march-c", "march-b"),
                   default="prt3")
    p.add_argument("--scheme",
                   choices=("single", "dual-port", "quad-port",
                            "dual-schedule", "quad-schedule"),
                   default="single",
                   help="port scheme: single (default; runs --test on a "
                        "single-port RAM), dual-port (Figure 2 π-iteration "
                        "on a 2-port RAM, 2n cycles), quad-port (the "
                        "multi-LFSR DSE scheme on a 4-port RAM, n cycles), "
                        "or dual-schedule/quad-schedule (three chained "
                        "iterations with transparent verification riding "
                        "the write cycles' idle ports and a port-parallel "
                        "read-back; --pure drops the verification); the "
                        "port schemes replace --test and replay through "
                        "the compiled cycle-grouped engine")
    p.add_argument("--pure", action="store_true")
    p.add_argument("--workers", type=int, default=0,
                   help="shard the campaign over N worker processes "
                        "(0 = serial); with --engine batched the lane "
                        "passes overlap the scalar remainder")
    p.add_argument("--engine",
                   choices=("auto", "interpreted", "compiled", "batched"),
                   default="auto",
                   help="campaign engine: auto (compile when possible), "
                        "interpreted (legacy per-fault loop), compiled "
                        "(per-fault stream replay), batched (bit-packed "
                        "lane-parallel fault classes, bit- and "
                        "word-oriented alike; fastest on universes "
                        "dominated by single-cell or coupling faults)")
    p.add_argument("--interpreted", action="store_true",
                   help="deprecated alias for --engine interpreted")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable result (same schema "
                        "as the repro.server POST /coverage response)")
    p.set_defaults(func=_cmd_coverage)

    p = sub.add_parser("verify", help="statically verify a compiled stream")
    _add_memory_args(p, default_n=28)
    p.add_argument("--test",
                   choices=("prt3", "prt5", "mats+", "march-c", "march-b"),
                   default="prt3")
    p.add_argument("--scheme",
                   choices=("single", "dual-port", "quad-port",
                            "dual-schedule", "quad-schedule"),
                   default="single",
                   help="port scheme selector (same surface as coverage)")
    p.add_argument("--pure", action="store_true")
    p.add_argument("--no-dataflow", action="store_true",
                   help="skip the dataflow warnings (errors only)")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report (same schema "
                        "as the repro.server POST /verify response)")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("compare", help="March vs PRT table (E9)")
    _add_memory_args(p, default_n=28)
    p.add_argument("--workers", type=int, default=0,
                   help="shard each campaign over N worker processes "
                        "(0 = serial); all rows reuse one persistent pool")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable table (same schema "
                        "as the repro.server POST /compare response)")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("overhead", help="BIST overhead sweep (E5)")
    _add_memory_args(p, default_m=4)
    p.add_argument("--ports", type=int, default=2)
    p.set_defaults(func=_cmd_overhead)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
