"""Guard benchmark timings against a checked-in baseline.

Compares the JSON summary a fresh benchmark run produced (e.g. the CI
``bench-smoke`` job's ``BENCH_ci.json``) with the committed baseline in
``benchmarks/out/``.  Rows are matched by ``(section, test, n,
universe)``; every wall-clock field (``*_s``) present in both rows is
compared, and the check fails when any of them regressed by more than
``--max-slowdown``.

Rows or fields only one side has are skipped (quick mode runs a subset
of the full benchmark), as are baseline timings below ``--min-seconds``
(too noisy to gate on).  Speedup ratios are *not* compared -- CI runners
have different core counts than the baseline host; absolute per-path
wall clock with generous headroom is the stable signal.

``fallback_summary`` rows additionally gate *vectorization*: any fault
class appearing in a current row's ``fallback`` census that was
lane-vectorized in the matching baseline row (absent from its
``fallback``) fails the check outright, slowdown budget notwithstanding
-- a class silently dropping out of the lane passes is an engine
regression even when the smoke timings still fit.

Usage::

    python tools/check_bench.py \
        --baseline benchmarks/out/bench_campaign_engine.json \
        --current BENCH_ci.json --max-slowdown 3
"""

from __future__ import annotations

import argparse
import json
import sys

ROW_SECTIONS = ("rows", "single_cell_rows", "multiport_rows",
                "wordlane_rows", "sharded_rows", "fallback_summary")


def _row_key(section: str, row: dict) -> tuple:
    return (section, row.get("test"), row.get("n"), row.get("universe"))


def _index_rows(summary: dict) -> dict[tuple, dict]:
    indexed: dict[tuple, dict] = {}
    for section in ROW_SECTIONS:
        for row in summary.get(section, ()):
            indexed[_row_key(section, row)] = row
    return indexed


def compare(baseline: dict, current: dict, max_slowdown: float,
            min_seconds: float) -> tuple[list[str], list[str]]:
    """Returns (comparison lines, regression lines)."""
    lines: list[str] = []
    regressions: list[str] = []
    base_rows = _index_rows(baseline)
    cur_rows = _index_rows(current)
    shared_keys = [key for key in base_rows if key in cur_rows]
    if not shared_keys:
        regressions.append(
            "no comparable rows between baseline and current summaries "
            "(did the benchmark's row identities change?)"
        )
        return lines, regressions
    for key in shared_keys:
        base, cur = base_rows[key], cur_rows[key]
        section, test, n, universe = key
        label = f"{test} n={n}" + (f" [{universe}]" if universe else "")
        for field in sorted(base):
            if not field.endswith("_s") or field not in cur:
                continue
            base_t, cur_t = base[field], cur[field]
            if not isinstance(base_t, (int, float)) or base_t < min_seconds:
                continue
            ratio = cur_t / base_t if base_t else float("inf")
            verdict = "ok"
            if ratio > max_slowdown:
                verdict = "REGRESSION"
                regressions.append(
                    f"{label} {field}: {cur_t:.3f}s vs baseline "
                    f"{base_t:.3f}s ({ratio:.2f}x > {max_slowdown}x)"
                )
            lines.append(f"{label:>40} {field:>14} "
                         f"{base_t:>8.3f}s -> {cur_t:>8.3f}s "
                         f"({ratio:>5.2f}x) {verdict}")
        if section == "fallback_summary":
            # Vectorization gate: a fault class that resolved in lane
            # passes in the baseline must never reappear in the scalar
            # fallback -- that is a silent engine regression even when
            # the wall clock stays inside the slowdown budget.
            base_fallback = base.get("fallback", {})
            for cls, count in sorted(cur.get("fallback", {}).items()):
                if cls not in base_fallback:
                    regressions.append(
                        f"{label}: fault class {cls!r} regressed to the "
                        f"scalar fallback ({count} faults were "
                        f"lane-vectorized in the baseline)"
                    )
                    lines.append(f"{label:>40} {'fallback':>14} "
                                 f"{cls}: lanes -> scalar REGRESSION")
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in benchmark summary JSON")
    parser.add_argument("--current", required=True,
                        help="freshly produced benchmark summary JSON")
    parser.add_argument("--max-slowdown", type=float, default=3.0,
                        help="fail when current/baseline exceeds this "
                             "ratio (default: 3)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore baseline timings below this (noise "
                             "floor, default: 0.05s)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.current) as handle:
        current = json.load(handle)

    lines, regressions = compare(baseline, current,
                                 args.max_slowdown, args.min_seconds)
    for line in lines:
        print(line)
    base_cpus, cur_cpus = baseline.get("cpus"), current.get("cpus")
    if base_cpus != cur_cpus:
        print(f"note: baseline host had {base_cpus} cpus, "
              f"this host has {cur_cpus}")
    if regressions:
        print(f"\n{len(regressions)} benchmark regression(s):",
              file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print(f"\nbenchmark check passed ({len(lines)} timings compared, "
          f"max slowdown allowed {args.max_slowdown}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
