"""Guard benchmark timings against a checked-in baseline.

Compares the JSON summary a fresh benchmark run produced (e.g. the CI
``bench-smoke`` job's ``BENCH_ci.json``) with the committed baseline in
``benchmarks/out/``.  Rows are matched by ``(section, test, n,
universe)``; every wall-clock field (``*_s``) present in both rows is
compared, and the check fails when any of them regressed by more than
``--max-slowdown``.

Rows or fields only one side has are skipped (quick mode runs a subset
of the full benchmark), as are baseline timings below ``--min-seconds``
(too noisy to gate on).  Speedup ratios are *not* compared -- CI runners
have different core counts than the baseline host; absolute per-path
wall clock with generous headroom is the stable signal.

``fallback_summary`` rows additionally gate *vectorization*: any fault
class appearing in a current row's ``fallback`` census that was
lane-vectorized in the matching baseline row (absent from its
``fallback``) fails the check outright, slowdown budget notwithstanding
-- a class silently dropping out of the lane passes is an engine
regression even when the smoke timings still fit.

``cache_rows`` rows additionally gate the *result cache*: each row's
``speedup_warm`` (cold campaign wall clock over warm cache-hit wall
clock, measured on the same host in the same process) must stay at or
above ``--min-cache-speedup``.  Unlike cross-host absolute timings this
ratio is host-independent, so it is compared directly against the
current run rather than the baseline.

Two more current-run-only ratio gates guard the parallel scheduler:

* ``shard_balance_rows``: for every ``(test, n)`` the work-stealing
  plan's imbalance ratio (max/mean shard wall time) must be strictly
  lower than the fixed ``chunk_size=128`` plan's -- the stealing
  scheduler losing to dumb fixed shards on the skewed universe it was
  built for is a regression regardless of absolute timings.
* ``sharded_rows``: on a multi-core host (``cpus >= 2`` in the current
  summary), every ``standard lane-sharded`` row big enough to engage
  the pool (``faults >= 4096``, the lane-shard threshold) must show
  ``sharded_vs_serial >= --min-sharded-speedup``.  Single-core hosts
  (and quick-mode's sub-threshold rows) skip the gate -- there the row
  measures pure dispatch overhead by design.

Usage::

    python tools/check_bench.py \
        --baseline benchmarks/out/bench_campaign_engine.json \
        --current BENCH_ci.json --max-slowdown 3
"""

from __future__ import annotations

import argparse
import json
import sys

ROW_SECTIONS = ("rows", "single_cell_rows", "multiport_rows",
                "wordlane_rows", "sharded_rows", "cache_rows",
                "shard_balance_rows", "fallback_summary")

#: run_campaign_batched ships whole lane-pass chunks to the pool only
#: past this many vectorizable faults (repro.sim.batched
#: LANE_SHARD_MIN_FAULTS); smaller lane-sharded rows measure pure
#: dispatch overhead and are exempt from the speedup gate.
LANE_SHARD_MIN_FAULTS = 4096


def _row_key(section: str, row: dict) -> tuple:
    return (section, row.get("test"), row.get("n"), row.get("universe"))


def _index_rows(summary: dict) -> dict[tuple, dict]:
    indexed: dict[tuple, dict] = {}
    for section in ROW_SECTIONS:
        for row in summary.get(section, ()):
            indexed[_row_key(section, row)] = row
    return indexed


def compare(baseline: dict, current: dict, max_slowdown: float,
            min_seconds: float,
            min_cache_speedup: float = 100.0,
            min_sharded_speedup: float = 1.5) -> tuple[list[str], list[str]]:
    """Returns (comparison lines, regression lines)."""
    lines: list[str] = []
    regressions: list[str] = []
    base_rows = _index_rows(baseline)
    cur_rows = _index_rows(current)
    # Shard-balance gate: the stealing plan must beat fixed chunk_size=128
    # on the skewed universe's imbalance ratio (max/mean shard wall time).
    # A same-host, same-process ratio, so it gates the current run alone.
    balance: dict[tuple, dict[str, float]] = {}
    for row in current.get("shard_balance_rows", ()):
        imbalance = row.get("imbalance")
        if isinstance(imbalance, (int, float)):
            balance.setdefault((row.get("test"), row.get("n")),
                               {})[row.get("strategy")] = imbalance
    for (test, n), plans in sorted(balance.items(), key=str):
        fixed, stealing = plans.get("fixed-128"), plans.get("stealing")
        if fixed is None or stealing is None:
            continue
        label = f"{test} n={n} [shard balance]"
        verdict = "ok"
        if stealing >= fixed:
            verdict = "REGRESSION"
            regressions.append(
                f"{label}: stealing imbalance x{stealing:.2f} is not below "
                f"fixed-128's x{fixed:.2f} (the stealing plan must beat "
                f"fixed shards on the skewed universe)"
            )
        lines.append(f"{label:>40} {'imbalance':>14} "
                     f"fixed x{fixed:.2f} vs stealing x{stealing:.2f} "
                     f"{verdict}")
    # Lane-sharded speedup gate: multi-core hosts must show workers=N
    # beating the serial batched engine on rows that actually engage the
    # pool.  Ratio of two same-host timings, so current-run-only.
    if (current.get("cpus") or 0) >= 2:
        for row in current.get("sharded_rows", ()):
            ratio = row.get("sharded_vs_serial")
            if row.get("universe") != "standard lane-sharded" \
                    or not isinstance(ratio, (int, float)) \
                    or row.get("faults", 0) < LANE_SHARD_MIN_FAULTS:
                continue
            label = f"{row.get('test')} n={row.get('n')} [lane-sharded]"
            verdict = "ok"
            if ratio < min_sharded_speedup:
                verdict = "REGRESSION"
                regressions.append(
                    f"{label}: workers={row.get('workers')} only {ratio:.2f}x "
                    f"the serial batched engine on {current.get('cpus')} cpus "
                    f"(floor {min_sharded_speedup:.1f}x)"
                )
            lines.append(f"{label:>40} {'vs_serial':>14} "
                         f"{ratio:>10.2f}x (floor "
                         f"{min_sharded_speedup:.1f}x) {verdict}")
    # Result-cache gate: same-host cold/warm ratio, checked against the
    # current run alone (an older baseline without cache_rows still
    # gates a fresh run that has them).
    for row in current.get("cache_rows", ()):
        label = f"{row.get('test')} n={row.get('n')} [result cache]"
        speedup = row.get("speedup_warm")
        if not isinstance(speedup, (int, float)):
            continue
        verdict = "ok"
        if speedup < min_cache_speedup:
            verdict = "REGRESSION"
            regressions.append(
                f"{label}: warm cache hit only {speedup:.1f}x faster than "
                f"the cold campaign (floor {min_cache_speedup:.0f}x)"
            )
        lines.append(f"{label:>40} {'speedup_warm':>14} "
                     f"{speedup:>10.1f}x (floor "
                     f"{min_cache_speedup:.0f}x) {verdict}")
    shared_keys = [key for key in base_rows if key in cur_rows]
    if not shared_keys:
        regressions.append(
            "no comparable rows between baseline and current summaries "
            "(did the benchmark's row identities change?)"
        )
        return lines, regressions
    for key in shared_keys:
        base, cur = base_rows[key], cur_rows[key]
        section, test, n, universe = key
        label = f"{test} n={n}" + (f" [{universe}]" if universe else "")
        for field in sorted(base):
            if not field.endswith("_s") or field not in cur:
                continue
            base_t, cur_t = base[field], cur[field]
            if not isinstance(base_t, (int, float)) or base_t < min_seconds:
                continue
            ratio = cur_t / base_t if base_t else float("inf")
            verdict = "ok"
            if ratio > max_slowdown:
                verdict = "REGRESSION"
                regressions.append(
                    f"{label} {field}: {cur_t:.3f}s vs baseline "
                    f"{base_t:.3f}s ({ratio:.2f}x > {max_slowdown}x)"
                )
            lines.append(f"{label:>40} {field:>14} "
                         f"{base_t:>8.3f}s -> {cur_t:>8.3f}s "
                         f"({ratio:>5.2f}x) {verdict}")
        if section == "fallback_summary":
            # Vectorization gate: a fault class that resolved in lane
            # passes in the baseline must never reappear in the scalar
            # fallback -- that is a silent engine regression even when
            # the wall clock stays inside the slowdown budget.
            base_fallback = base.get("fallback", {})
            for cls, count in sorted(cur.get("fallback", {}).items()):
                if cls not in base_fallback:
                    regressions.append(
                        f"{label}: fault class {cls!r} regressed to the "
                        f"scalar fallback ({count} faults were "
                        f"lane-vectorized in the baseline)"
                    )
                    lines.append(f"{label:>40} {'fallback':>14} "
                                 f"{cls}: lanes -> scalar REGRESSION")
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in benchmark summary JSON")
    parser.add_argument("--current", required=True,
                        help="freshly produced benchmark summary JSON")
    parser.add_argument("--max-slowdown", type=float, default=3.0,
                        help="fail when current/baseline exceeds this "
                             "ratio (default: 3)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore baseline timings below this (noise "
                             "floor, default: 0.05s)")
    parser.add_argument("--min-cache-speedup", type=float, default=100.0,
                        help="fail when a cache_rows warm hit is less than "
                             "this many times faster than its cold campaign "
                             "(default: 100)")
    parser.add_argument("--min-sharded-speedup", type=float, default=1.5,
                        help="on a >=2-cpu host, fail when a lane-sharded "
                             "row's workers=N run is less than this many "
                             "times faster than serial batched (default: 1.5)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.current) as handle:
        current = json.load(handle)

    lines, regressions = compare(baseline, current,
                                 args.max_slowdown, args.min_seconds,
                                 args.min_cache_speedup,
                                 args.min_sharded_speedup)
    for line in lines:
        print(line)
    base_cpus, cur_cpus = baseline.get("cpus"), current.get("cpus")
    if base_cpus != cur_cpus:
        print(f"note: baseline host had {base_cpus} cpus, "
              f"this host has {cur_cpus}")
    if regressions:
        print(f"\n{len(regressions)} benchmark regression(s):",
              file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print(f"\nbenchmark check passed ({len(lines)} timings compared, "
          f"max slowdown allowed {args.max_slowdown}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
