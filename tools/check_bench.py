"""Guard benchmark timings against a checked-in baseline.

Compares the JSON summary a fresh benchmark run produced (e.g. the CI
``bench-smoke`` job's ``BENCH_ci.json``) with the committed baseline in
``benchmarks/out/``.  Rows are matched by ``(section, test, n,
universe)``; every wall-clock field (``*_s``) present in both rows is
compared, and the check fails when any of them regressed by more than
``--max-slowdown``.

Rows or fields only one side has are skipped (quick mode runs a subset
of the full benchmark), as are baseline timings below ``--min-seconds``
(too noisy to gate on).  Speedup ratios are *not* compared -- CI runners
have different core counts than the baseline host; absolute per-path
wall clock with generous headroom is the stable signal.

``fallback_summary`` rows additionally gate *vectorization*: any fault
class appearing in a current row's ``fallback`` census that was
lane-vectorized in the matching baseline row (absent from its
``fallback``) fails the check outright, slowdown budget notwithstanding
-- a class silently dropping out of the lane passes is an engine
regression even when the smoke timings still fit.

``cache_rows`` rows additionally gate the *result cache*: each row's
``speedup_warm`` (cold campaign wall clock over warm cache-hit wall
clock, measured on the same host in the same process) must stay at or
above ``--min-cache-speedup``.  Unlike cross-host absolute timings this
ratio is host-independent, so it is compared directly against the
current run rather than the baseline.

Usage::

    python tools/check_bench.py \
        --baseline benchmarks/out/bench_campaign_engine.json \
        --current BENCH_ci.json --max-slowdown 3
"""

from __future__ import annotations

import argparse
import json
import sys

ROW_SECTIONS = ("rows", "single_cell_rows", "multiport_rows",
                "wordlane_rows", "sharded_rows", "cache_rows",
                "fallback_summary")


def _row_key(section: str, row: dict) -> tuple:
    return (section, row.get("test"), row.get("n"), row.get("universe"))


def _index_rows(summary: dict) -> dict[tuple, dict]:
    indexed: dict[tuple, dict] = {}
    for section in ROW_SECTIONS:
        for row in summary.get(section, ()):
            indexed[_row_key(section, row)] = row
    return indexed


def compare(baseline: dict, current: dict, max_slowdown: float,
            min_seconds: float,
            min_cache_speedup: float = 100.0) -> tuple[list[str], list[str]]:
    """Returns (comparison lines, regression lines)."""
    lines: list[str] = []
    regressions: list[str] = []
    base_rows = _index_rows(baseline)
    cur_rows = _index_rows(current)
    # Result-cache gate: same-host cold/warm ratio, checked against the
    # current run alone (an older baseline without cache_rows still
    # gates a fresh run that has them).
    for row in current.get("cache_rows", ()):
        label = f"{row.get('test')} n={row.get('n')} [result cache]"
        speedup = row.get("speedup_warm")
        if not isinstance(speedup, (int, float)):
            continue
        verdict = "ok"
        if speedup < min_cache_speedup:
            verdict = "REGRESSION"
            regressions.append(
                f"{label}: warm cache hit only {speedup:.1f}x faster than "
                f"the cold campaign (floor {min_cache_speedup:.0f}x)"
            )
        lines.append(f"{label:>40} {'speedup_warm':>14} "
                     f"{speedup:>10.1f}x (floor "
                     f"{min_cache_speedup:.0f}x) {verdict}")
    shared_keys = [key for key in base_rows if key in cur_rows]
    if not shared_keys:
        regressions.append(
            "no comparable rows between baseline and current summaries "
            "(did the benchmark's row identities change?)"
        )
        return lines, regressions
    for key in shared_keys:
        base, cur = base_rows[key], cur_rows[key]
        section, test, n, universe = key
        label = f"{test} n={n}" + (f" [{universe}]" if universe else "")
        for field in sorted(base):
            if not field.endswith("_s") or field not in cur:
                continue
            base_t, cur_t = base[field], cur[field]
            if not isinstance(base_t, (int, float)) or base_t < min_seconds:
                continue
            ratio = cur_t / base_t if base_t else float("inf")
            verdict = "ok"
            if ratio > max_slowdown:
                verdict = "REGRESSION"
                regressions.append(
                    f"{label} {field}: {cur_t:.3f}s vs baseline "
                    f"{base_t:.3f}s ({ratio:.2f}x > {max_slowdown}x)"
                )
            lines.append(f"{label:>40} {field:>14} "
                         f"{base_t:>8.3f}s -> {cur_t:>8.3f}s "
                         f"({ratio:>5.2f}x) {verdict}")
        if section == "fallback_summary":
            # Vectorization gate: a fault class that resolved in lane
            # passes in the baseline must never reappear in the scalar
            # fallback -- that is a silent engine regression even when
            # the wall clock stays inside the slowdown budget.
            base_fallback = base.get("fallback", {})
            for cls, count in sorted(cur.get("fallback", {}).items()):
                if cls not in base_fallback:
                    regressions.append(
                        f"{label}: fault class {cls!r} regressed to the "
                        f"scalar fallback ({count} faults were "
                        f"lane-vectorized in the baseline)"
                    )
                    lines.append(f"{label:>40} {'fallback':>14} "
                                 f"{cls}: lanes -> scalar REGRESSION")
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in benchmark summary JSON")
    parser.add_argument("--current", required=True,
                        help="freshly produced benchmark summary JSON")
    parser.add_argument("--max-slowdown", type=float, default=3.0,
                        help="fail when current/baseline exceeds this "
                             "ratio (default: 3)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore baseline timings below this (noise "
                             "floor, default: 0.05s)")
    parser.add_argument("--min-cache-speedup", type=float, default=100.0,
                        help="fail when a cache_rows warm hit is less than "
                             "this many times faster than its cold campaign "
                             "(default: 100)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.current) as handle:
        current = json.load(handle)

    lines, regressions = compare(baseline, current,
                                 args.max_slowdown, args.min_seconds,
                                 args.min_cache_speedup)
    for line in lines:
        print(line)
    base_cpus, cur_cpus = baseline.get("cpus"), current.get("cpus")
    if base_cpus != cur_cpus:
        print(f"note: baseline host had {base_cpus} cpus, "
              f"this host has {cur_cpus}")
    if regressions:
        print(f"\n{len(regressions)} benchmark regression(s):",
              file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print(f"\nbenchmark check passed ({len(lines)} timings compared, "
          f"max slowdown allowed {args.max_slowdown}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
