#!/usr/bin/env python
"""The verifier's acceptance gate: compilers pass, seeded mutations fail.

Two directions, both required for :mod:`repro.sim.verify` to be a
trustworthy pre-campaign filter:

* **accept** -- every stream the six built-in compilers emit over the
  standard schemes (March library, PRT schedules, dual/quad-port
  iterations, multi-port schedules) must verify with *zero
  error-severity* diagnostics.  Warnings are allowed: multi-background
  March streams legitimately carry dead writes between backgrounds.

* **reject** -- every mutation in the committed corpus below (>= 20
  seeded structural/semantic corruptions) must be rejected, either by
  :class:`~repro.sim.ir.OpStream` construction raising
  :class:`~repro.sim.diagnostics.StreamError` or by :func:`verify`
  reporting an error diagnostic -- and the reported codes must include
  the mutation's expected code, so a rule silently weakening fails the
  gate even if some *other* rule still trips.

Run standalone (exit 0 clean / 1 failures)::

    python tools/check_verify_corpus.py

or import :func:`accept_failures` / :func:`reject_failures` (the tests
do).
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.gf2 import poly_from_string  # noqa: E402
from repro.gf2m import GF2m  # noqa: E402
from repro.march import library  # noqa: E402
from repro.prt import (  # noqa: E402
    DualPortPiIteration,
    PiIteration,
    QuadPortPiIteration,
    extended_schedule,
    standard_multi_schedule,
    standard_schedule,
)
from repro.sim import (  # noqa: E402
    OpStream,
    Segment,
    StreamError,
    compile_dual_port_pi,
    compile_march,
    compile_multi_schedule,
    compile_pi_iteration,
    compile_quad_port_pi,
    compile_schedule,
    verify,
)


def _field16() -> GF2m:
    return GF2m(poly_from_string("1+z+z^4"))


def compiler_streams() -> list[OpStream]:
    """The acceptance set: all six compilers over the standard schemes."""
    streams = []
    for test in library.ALL_MARCH_TESTS:
        for m in (1, 4):
            streams.append(compile_march(test, 16, m=m))
    field = _field16()
    streams.append(compile_schedule(standard_schedule(), 16))
    streams.append(compile_schedule(extended_schedule(), 16))
    streams.append(compile_schedule(standard_schedule(field), 16, m=4))
    streams.append(compile_pi_iteration(
        PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1)), 14))
    streams.append(compile_pi_iteration(
        PiIteration(field=field, generator=(1, 2, 2), seed=(0, 1)), 15, m=4))
    streams.append(compile_dual_port_pi(DualPortPiIteration(seed=(0, 1)), 9))
    streams.append(compile_dual_port_pi(
        DualPortPiIteration(field=field, generator=(1, 2, 2), seed=(0, 1)),
        14, m=4))
    streams.append(compile_quad_port_pi(QuadPortPiIteration(), 12))
    streams.append(compile_multi_schedule(
        standard_multi_schedule(ports=2), 12))
    streams.append(compile_multi_schedule(
        standard_multi_schedule(ports=4), 12))
    return streams


# -- the mutation corpus -----------------------------------------------------


def _remake(stream: OpStream, **overrides) -> OpStream:
    kwargs = dict(source=stream.source, name=stream.name, n=stream.n,
                  m=stream.m, ops=stream.ops, info=stream.info,
                  tables=stream.tables, segments=stream.segments,
                  ports=stream.ports)
    kwargs.update(overrides)
    return OpStream(**kwargs)


def _mutate_op(stream: OpStream, index: int, slot: int, value) -> OpStream:
    ops = list(stream.ops)
    record = list(ops[index])
    record[slot] = value
    ops[index] = tuple(record)
    return _remake(stream, ops=tuple(ops))


def _first(stream: OpStream, kind: str) -> int:
    return next(i for i, record in enumerate(stream.ops)
                if record[0] == kind)


def _march(m: int = 1) -> OpStream:
    return compile_march(library.MARCH_C_MINUS, 8, m=m)


def _retention_march() -> OpStream:
    return compile_march(library.MATS_PLUS_RETENTION, 8)


def _schedule16() -> OpStream:
    return compile_schedule(standard_schedule(_field16()), 16, m=4)


def _dual() -> OpStream:
    return compile_dual_port_pi(DualPortPiIteration(seed=(0, 1)), 9)


def _quad() -> OpStream:
    return compile_quad_port_pi(QuadPortPiIteration(), 12)


def _raw(ops, ports: int = 1, info=None, **overrides) -> OpStream:
    kwargs = dict(source="corpus", name="corpus", n=4, m=1, ops=tuple(ops),
                  info=tuple(info) if info is not None
                  else tuple((0, i) for i in range(len(ops))),
                  ports=ports)
    kwargs.update(overrides)
    return OpStream(**kwargs)


def _drop_group_member(stream: OpStream) -> OpStream:
    # Truncate right after the *last* group marker: it announces k
    # members but none follow -- the canonical dropped-member shape.
    marker = max(i for i, record in enumerate(stream.ops)
                 if record[0] == "grp")
    return _remake(stream, ops=stream.ops[:marker + 1],
                   info=stream.info[:marker + 1],
                   segments=())


def _swap_group_ports(stream: OpStream) -> OpStream:
    # Both members of the first 2-member group onto one port.
    marker = next(i for i, record in enumerate(stream.ops)
                  if record[0] == "grp" and record[3] == 2)
    ops = list(stream.ops)
    for member in (marker + 1, marker + 2):
        record = list(ops[member])
        record[1] = 0
        ops[member] = tuple(record)
    return _remake(stream, ops=tuple(ops))


def _orphan_accumulator(stream: OpStream) -> OpStream:
    # Re-home one "ra" contribution onto an accumulator no "wa" flushes.
    return _mutate_op(stream, _first(stream, "ra"), 5, 9)


def _shrink_segment(stream: OpStream) -> OpStream:
    segment = stream.segments[0]
    return _remake(stream, segments=(
        Segment(label=segment.label, index=segment.index,
                start=segment.start, stop=len(stream.ops) + 5),))


#: name -> (expected diagnostic code, builder of the mutated stream).
MUTATIONS: dict[str, tuple[str, object]] = {
    # construction-contract corruptions (raw minimal streams)
    "ops-info-mismatch": ("E001", lambda: _raw(
        [("w", 0, 0, 1, None, 0)], info=[(0, 0), (0, 1)])),
    "zero-ports": ("E002", lambda: _raw(
        [("w", 0, 0, 1, None, 0)], ports=0)),
    "unknown-kind": ("E003", lambda: _raw([("x", 0, 0, 1, None, 0)])),
    "group-count-zero": ("E101", lambda: _raw(
        [("grp", 0, 0, 0, None, 0)], ports=2)),
    "group-count-string": ("E101", lambda: _raw(
        [("grp", 0, 0, "2", None, 0)], ports=2)),
    "group-wider-than-ports": ("E102", lambda: _raw(
        [("grp", 0, 0, 2, None, 0), ("w", 0, 0, 1, None, 0),
         ("w", 1, 1, 1, None, 0)], ports=1)),
    "group-truncated": ("E103", lambda: _raw(
        [("grp", 0, 0, 2, None, 0), ("w", 0, 0, 1, None, 0)], ports=2)),
    "idle-inside-group": ("E104", lambda: _raw(
        [("grp", 0, 0, 2, None, 0), ("w", 0, 0, 1, None, 0),
         ("i", 1, 0, 0, None, 4)], ports=2)),
    "nested-group": ("E104", lambda: _raw(
        [("grp", 0, 0, 2, None, 0), ("grp", 0, 0, 1, None, 0),
         ("w", 1, 1, 1, None, 0)], ports=2)),
    "group-port-out-of-range": ("E105", lambda: _raw(
        [("grp", 0, 0, 2, None, 0), ("w", 0, 0, 1, None, 0),
         ("w", 5, 1, 1, None, 0)], ports=2)),
    "group-port-duplicated": ("E106", lambda: _swap_group_ports(_dual())),
    "group-double-write": ("E107", lambda: _raw(
        [("grp", 0, 0, 2, None, 0), ("w", 0, 2, 1, None, 0),
         ("w", 1, 2, 0, None, 0)], ports=2)),
    "dropped-group-member": ("E103", lambda: _drop_group_member(_dual())),
    # operand-domain corruptions (deep pass on compiled streams)
    "address-past-n": ("E201", lambda: _mutate_op(
        _march(), _first(_march(), "w"), 2, 8)),
    "address-negative": ("E201", lambda: _mutate_op(
        _march(), _first(_march(), "r"), 2, -1)),
    "write-value-overflow": ("E202", lambda: _mutate_op(
        _march(4), _first(_march(4), "w"), 3, 1 << 4)),
    "expected-read-overflow": ("E202", lambda: _mutate_op(
        _march(4), _first(_march(4), "r"), 4, (1 << 4) + 1)),
    "table-ref-out-of-range": ("E203", lambda: _mutate_op(
        _schedule16(), _first(_schedule16(), "ra"), 3, 99)),
    "table-truncated": ("E204", lambda: _remake(
        _schedule16(), tables=(_schedule16().tables[0][:3],)
        + _schedule16().tables[1:])),
    "table-entry-overflow": ("E204", lambda: _remake(
        _schedule16(),
        tables=((1 << 4,) + _schedule16().tables[0][1:],)
        + _schedule16().tables[1:])),
    "accumulator-id-negative": ("E205", lambda: _mutate_op(
        _quad(), _first(_quad(), "ra"), 5, -1)),
    "idle-count-negative": ("E206", lambda: _mutate_op(
        _retention_march(), _first(_retention_march(), "i"), 5, -3)),
    "orphan-accumulator": ("E207", lambda: _orphan_accumulator(_quad())),
    "segment-past-stream": ("E301", lambda: _shrink_segment(_schedule16())),
    "flat-port-out-of-range": ("E105", lambda: _mutate_op(
        _march(), _first(_march(), "w"), 1, 3)),
    "flat-port-non-int": ("E105", lambda: _mutate_op(
        _march(), _first(_march(), "r"), 1, None)),
}


def rejection_codes(build) -> list[str]:
    """Error codes a mutation produces (construction or deep pass)."""
    try:
        stream = build()
    except StreamError as exc:
        return [diagnostic.code for diagnostic in exc.diagnostics]
    return [diagnostic.code for diagnostic in verify(stream).errors]


def accept_failures() -> list[str]:
    """Compiler streams carrying error diagnostics (must be empty)."""
    failures = []
    for stream in compiler_streams():
        errors = verify(stream).errors
        if errors:
            failures.append(
                f"{stream.name} ({stream.source}, n={stream.n}, "
                f"m={stream.m}): {[str(d) for d in errors[:3]]}")
    return failures


def reject_failures() -> list[str]:
    """Corpus mutations that slipped through (must be empty)."""
    failures = []
    for name, (expected, build) in MUTATIONS.items():
        codes = rejection_codes(build)
        if not codes:
            failures.append(f"{name}: accepted (expected {expected})")
        elif expected not in codes:
            failures.append(f"{name}: rejected with {codes}, "
                            f"expected {expected}")
    return failures


def main() -> int:
    accepted = compiler_streams()
    accept_bad = accept_failures()
    reject_bad = reject_failures()
    for failure in accept_bad:
        print(f"ACCEPT-FAIL {failure}")
    for failure in reject_bad:
        print(f"REJECT-FAIL {failure}")
    print(f"check_verify_corpus: {len(accepted)} compiler streams accepted, "
          f"{len(MUTATIONS)} mutations rejected, "
          f"{len(accept_bad) + len(reject_bad)} failure(s)")
    return 1 if accept_bad or reject_bad else 0


if __name__ == "__main__":
    sys.exit(main())
