#!/usr/bin/env python
"""Docs smoke check: execute every ```python block in Markdown files.

Documentation snippets rot silently; this keeps them honest the same way
``tests/test_doctests.py`` keeps docstrings honest.  Every fenced code
block tagged ``python`` is executed top to bottom, blocks of one file
sharing a namespace (so a later block may build on an earlier one).
Non-Python fences (```text, ```bash, bare ```) are ignored, and a block
preceded by an HTML comment containing ``doc-check: skip`` is reported
but not executed.

Run standalone (the repository's ``src`` is put on ``sys.path``
automatically)::

    python tools/check_docs.py README.md docs/architecture.md

or with no arguments to check the default documentation set.  Exit code
is non-zero when any block fails; ``tests/test_docs.py`` runs the same
check inside the test suite.
"""

from __future__ import annotations

import os
import sys
import traceback

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_FILES = ("README.md", os.path.join("docs", "architecture.md"))
SKIP_MARK = "doc-check: skip"


def extract_python_blocks(text: str) -> list[tuple[int, str, bool]]:
    """``(first_code_line_number, code, skipped)`` for every python fence."""
    blocks: list[tuple[int, str, bool]] = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        stripped = lines[index].strip()
        if stripped.startswith("```"):
            tag = stripped[3:].strip().lower()
            fence_start = index
            index += 1
            start = index
            while index < len(lines) and lines[index].strip() != "```":
                index += 1
            if tag == "python":
                skipped = any(
                    SKIP_MARK in lines[k]
                    for k in range(max(0, fence_start - 2), fence_start)
                )
                blocks.append(
                    (start + 1, "\n".join(lines[start:index]), skipped)
                )
        index += 1
    return blocks


def check_file(path: str) -> list[str]:
    """Execute one file's blocks; returns failure descriptions."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    failures: list[str] = []
    namespace: dict = {"__name__": f"docsnippet:{os.path.basename(path)}"}
    blocks = extract_python_blocks(text)
    for lineno, code, skipped in blocks:
        label = f"{path}:{lineno}"
        if skipped:
            print(f"SKIP {label}")
            continue
        try:
            exec(compile(code, label, "exec"), namespace)
        except Exception:
            failures.append(f"{label}\n{traceback.format_exc()}")
            print(f"FAIL {label}")
        else:
            print(f"OK   {label}")
    if not blocks:
        print(f"---- {path}: no python blocks")
    return failures


def main(argv: list[str] | None = None) -> int:
    paths = list(argv) if argv else [
        os.path.join(REPO_ROOT, name) for name in DEFAULT_FILES
    ]
    src = os.path.join(REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    failures: list[str] = []
    for path in paths:
        failures.extend(check_file(path))
    if failures:
        print(f"\n{len(failures)} documentation block(s) failed:")
        for failure in failures:
            print(f"\n{failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
