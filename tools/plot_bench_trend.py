"""Render the benchmark trajectory from a series of JSON summaries.

The CI ``bench-full`` job uploads one ``bench_campaign_engine`` summary
per commit (and ``bench-smoke`` one quick summary per push).  Download a
set of those artifacts, point this tool at the files, and it renders the
wall-clock trend per ``(section, test, n, universe)`` row -- the
"trajectory over time" view the per-push 3x gate of
``tools/check_bench.py`` cannot give.

Summaries are ordered by ``--order`` (``args``: the order given on the
command line, e.g. oldest..newest SHAs; ``mtime``: file modification
time).  Output is a plain-text table with one unicode sparkline per
timing series -- no dependencies.  With ``--png PATH`` and matplotlib
available (it is *not* a requirement of this repo), a line chart is
written as well; without matplotlib the flag degrades to a notice.

Usage::

    python tools/plot_bench_trend.py run1.json run2.json run3.json
    python tools/plot_bench_trend.py artifacts/*.json --order mtime \
        --field compiled_s --png trend.png
"""

from __future__ import annotations

import argparse
import json
import os
import sys

ROW_SECTIONS = ("rows", "single_cell_rows", "multiport_rows", "sharded_rows")
SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def row_key(section: str, row: dict) -> tuple:
    return (section, row.get("test"), row.get("n"), row.get("universe"))


def label_of(key: tuple) -> str:
    section, test, n, universe = key
    label = f"{test} n={n}"
    if universe:
        label += f" [{universe}]"
    return label


def load_series(paths: list[str]) -> tuple[list[str], dict]:
    """Returns ``(run_names, {(key, field): [seconds-or-None per run]})``."""
    series: dict[tuple, list] = {}
    names: list[str] = []
    for run, path in enumerate(paths):
        with open(path) as handle:
            summary = json.load(handle)
        names.append(os.path.splitext(os.path.basename(path))[0])
        for section in ROW_SECTIONS:
            for row in summary.get(section, ()):
                key = row_key(section, row)
                for field, value in row.items():
                    if not field.endswith("_s") or \
                            not isinstance(value, (int, float)):
                        continue
                    track = series.setdefault((key, field), [None] * run)
                    # Pad runs this series missed (quick-mode subsets).
                    track.extend([None] * (run - len(track)))
                    track.append(value)
    total = len(paths)
    for track in series.values():
        track.extend([None] * (total - len(track)))
    return names, series


def sparkline(values: list) -> str:
    present = [value for value in values if value is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for value in values:
        if value is None:
            chars.append(" ")
            continue
        level = 0 if span == 0 else round(
            (value - lo) / span * (len(SPARK_LEVELS) - 1))
        chars.append(SPARK_LEVELS[level])
    return "".join(chars)


def render_text(names: list[str], series: dict,
                field_filter: str | None) -> list[str]:
    lines = [f"{len(names)} runs: {names[0]} .. {names[-1]}"
             if names else "no runs"]
    for (key, field), values in sorted(series.items(),
                                       key=lambda item: (item[0][0][0],
                                                         str(item[0]))):
        if field_filter is not None and field != field_filter:
            continue
        present = [value for value in values if value is not None]
        if not present:
            continue
        first, last = present[0], present[-1]
        delta = (last / first - 1.0) * 100 if first else float("inf")
        lines.append(
            f"{label_of(key):>44} {field:>14} "
            f"{sparkline(values)}  {first:>7.3f}s -> {last:>7.3f}s "
            f"({delta:+6.1f}%)"
        )
    return lines


def render_png(names: list[str], series: dict, field_filter: str | None,
               path: str) -> bool:
    """Write a matplotlib line chart; False when matplotlib is absent."""
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return False
    figure, axis = plt.subplots(figsize=(11, 6))
    x = range(len(names))
    for (key, field), values in sorted(series.items(),
                                       key=lambda item: str(item[0])):
        if field_filter is not None and field != field_filter:
            continue
        if not any(value is not None for value in values):
            continue
        axis.plot(x, values, marker="o", linewidth=1,
                  label=f"{label_of(key)} {field}")
    axis.set_xticks(list(x))
    axis.set_xticklabels(names, rotation=45, ha="right", fontsize=7)
    axis.set_ylabel("seconds")
    axis.set_title("bench_campaign_engine trajectory")
    axis.legend(fontsize=6, ncol=2)
    figure.tight_layout()
    figure.savefig(path, dpi=120)
    plt.close(figure)
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("summaries", nargs="+",
                        help="benchmark summary JSON files, one per run")
    parser.add_argument("--order", choices=("args", "mtime"), default="args",
                        help="run order: as given (default) or by file "
                             "modification time")
    parser.add_argument("--field", default=None,
                        help="only plot this timing field (e.g. "
                             "compiled_s); default: all *_s fields")
    parser.add_argument("--png", default=None,
                        help="additionally write a line chart here "
                             "(needs matplotlib; degrades to a notice)")
    args = parser.parse_args(argv)

    paths = list(args.summaries)
    if args.order == "mtime":
        paths.sort(key=os.path.getmtime)
    names, series = load_series(paths)
    for line in render_text(names, series, args.field):
        print(line)
    if args.png:
        if render_png(names, series, args.field, args.png):
            print(f"wrote {args.png}")
        else:
            print("matplotlib not available: skipped the PNG "
                  "(text trend above is complete)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
