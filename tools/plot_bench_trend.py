"""Render the benchmark trajectory from a series of JSON summaries.

The CI ``bench-full`` job uploads one ``bench_campaign_engine`` summary
per commit (and ``bench-smoke`` one quick summary per push).  Point this
tool at a set of downloaded summaries -- or let ``--from-artifacts``
pull the ``bench-full-*`` artifact series straight from GitHub via the
``gh`` CLI -- and it renders the wall-clock trend per ``(section, test,
n, universe)`` row: the "trajectory over time" view the per-push 3x gate
of ``tools/check_bench.py`` cannot give.

Summaries are ordered by ``--order`` (``args``: the order given on the
command line, e.g. oldest..newest SHAs; ``mtime``: file modification
time; ``--from-artifacts`` orders by artifact creation time).  Output is
a plain-text table with one unicode sparkline per timing series -- no
dependencies.  With ``--png PATH`` and matplotlib available (it is *not*
a requirement of this repo), a line chart is written as well; without
matplotlib the flag degrades to a notice.

``--from-artifacts`` needs an authenticated GitHub CLI (``gh auth
login``); artifacts are cached in ``--artifacts-dir`` (default
``benchmarks/out/artifacts``), so re-plotting only downloads new
commits.  Without ``gh`` the mode degrades to a pointed error, never a
traceback.

Usage::

    python tools/plot_bench_trend.py run1.json run2.json run3.json
    python tools/plot_bench_trend.py artifacts/*.json --order mtime \
        --field compiled_s --png trend.png
    python tools/plot_bench_trend.py --from-artifacts --limit 20
    python tools/plot_bench_trend.py --from-artifacts --repo owner/name
"""

from __future__ import annotations

import argparse
import io
import json
import os
import subprocess
import sys
import zipfile

ROW_SECTIONS = ("rows", "single_cell_rows", "multiport_rows",
                "wordlane_rows", "sharded_rows")
SPARK_LEVELS = "▁▂▃▄▅▆▇█"
ARTIFACT_PREFIX = "bench-full-"


def _run_gh(args: list[str]) -> bytes:
    """Run one ``gh`` command, returning stdout bytes.

    Raises :class:`RuntimeError` with an actionable message when the
    GitHub CLI is missing or the call fails (no tracebacks for the two
    predictable failure modes: gh not installed, not authenticated).
    """
    try:
        proc = subprocess.run(["gh", *args], capture_output=True)
    except FileNotFoundError:
        raise RuntimeError(
            "--from-artifacts needs the GitHub CLI: install gh and run "
            "'gh auth login' (or download the bench-full-* artifacts by "
            "hand and pass the JSON files directly)"
        ) from None
    if proc.returncode != 0:
        detail = proc.stderr.decode(errors="replace").strip()
        raise RuntimeError(f"gh {' '.join(args)} failed: {detail}")
    return proc.stdout


def _detect_repo(run=None) -> str:
    """The ``owner/name`` of the current directory's GitHub repo."""
    run = run if run is not None else _run_gh
    out = run(["repo", "view", "--json", "nameWithOwner",
               "--jq", ".nameWithOwner"])
    return out.decode().strip()


def fetch_artifact_series(repo: str, out_dir: str, limit: int = 0,
                          prefix: str = ARTIFACT_PREFIX,
                          run=None) -> list[str]:
    """Download the CI benchmark-summary artifact series via ``gh api``.

    Lists the repository's workflow artifacts, keeps the unexpired ones
    whose name starts with ``prefix`` (the ``bench-full-<sha>`` uploads
    of ci.yml), downloads each zip, and extracts its JSON summary into
    ``out_dir`` as ``<artifact-name>.json``.  Already-extracted
    summaries are reused, so repeated plots only fetch new commits.

    Returns the summary paths ordered oldest -> newest by artifact
    creation time (the natural x-axis of the trend plot), newest
    ``limit`` only when ``limit > 0``.
    """
    run = run if run is not None else _run_gh
    listing = run(["api", f"repos/{repo}/actions/artifacts",
                   "--paginate", "--jq",
                   ".artifacts[] | {id, name, created_at, expired}"])
    by_name: dict[str, dict] = {}
    for line in listing.decode().splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        if entry.get("expired") or \
                not str(entry.get("name", "")).startswith(prefix):
            continue
        # A re-run workflow uploads a second artifact under the same
        # bench-full-<sha> name; keep only the newest per name so one
        # commit contributes one point to the trend.
        known = by_name.get(entry["name"])
        if known is None or (entry["created_at"], entry["id"]) > \
                (known["created_at"], known["id"]):
            by_name[entry["name"]] = entry
    artifacts = sorted(by_name.values(),
                       key=lambda entry: (entry["created_at"], entry["id"]))
    if limit > 0:
        artifacts = artifacts[-limit:]
    if not artifacts:
        raise RuntimeError(
            f"no unexpired {prefix}* artifacts found in {repo} (the CI "
            f"bench-full job uploads one per commit on the main branch)"
        )
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for entry in artifacts:
        # The artifact id keys the cache file, so a newer re-run of an
        # already-downloaded commit is fetched, not served stale.
        path = os.path.join(out_dir, f"{entry['name']}-{entry['id']}.json")
        if not os.path.exists(path):
            payload = run(["api",
                           f"repos/{repo}/actions/artifacts/"
                           f"{entry['id']}/zip"])
            _extract_summary(payload, entry["name"], path)
        paths.append(path)
    return paths


def _extract_summary(zip_bytes: bytes, name: str, path: str) -> None:
    """Write the (single) JSON member of an artifact zip to ``path``.

    The write goes through a temp file + ``os.replace`` so an
    interrupted or failed extraction never leaves a partial file that
    the ``os.path.exists`` cache check would treat as a valid summary.
    """
    with zipfile.ZipFile(io.BytesIO(zip_bytes)) as archive:
        members = [m for m in archive.namelist() if m.endswith(".json")]
        if not members:
            raise RuntimeError(f"artifact {name} contains no JSON summary")
        staging = f"{path}.tmp"
        with archive.open(members[0]) as member, open(staging, "wb") as out:
            out.write(member.read())
        os.replace(staging, path)


def row_key(section: str, row: dict) -> tuple:
    return (section, row.get("test"), row.get("n"), row.get("universe"))


def label_of(key: tuple) -> str:
    section, test, n, universe = key
    label = f"{test} n={n}"
    if universe:
        label += f" [{universe}]"
    return label


def load_series(paths: list[str]) -> tuple[list[str], dict]:
    """Returns ``(run_names, {(key, field): [seconds-or-None per run]})``."""
    series: dict[tuple, list] = {}
    names: list[str] = []
    for run, path in enumerate(paths):
        with open(path) as handle:
            summary = json.load(handle)
        names.append(os.path.splitext(os.path.basename(path))[0])
        for section in ROW_SECTIONS:
            for row in summary.get(section, ()):
                key = row_key(section, row)
                for field, value in row.items():
                    if not field.endswith("_s") or \
                            not isinstance(value, (int, float)):
                        continue
                    track = series.setdefault((key, field), [None] * run)
                    # Pad runs this series missed (quick-mode subsets).
                    track.extend([None] * (run - len(track)))
                    track.append(value)
    total = len(paths)
    for track in series.values():
        track.extend([None] * (total - len(track)))
    return names, series


def sparkline(values: list) -> str:
    present = [value for value in values if value is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for value in values:
        if value is None:
            chars.append(" ")
            continue
        level = 0 if span == 0 else round(
            (value - lo) / span * (len(SPARK_LEVELS) - 1))
        chars.append(SPARK_LEVELS[level])
    return "".join(chars)


def render_text(names: list[str], series: dict,
                field_filter: str | None) -> list[str]:
    lines = [f"{len(names)} runs: {names[0]} .. {names[-1]}"
             if names else "no runs"]
    for (key, field), values in sorted(series.items(),
                                       key=lambda item: (item[0][0][0],
                                                         str(item[0]))):
        if field_filter is not None and field != field_filter:
            continue
        present = [value for value in values if value is not None]
        if not present:
            continue
        first, last = present[0], present[-1]
        delta = (last / first - 1.0) * 100 if first else float("inf")
        lines.append(
            f"{label_of(key):>44} {field:>14} "
            f"{sparkline(values)}  {first:>7.3f}s -> {last:>7.3f}s "
            f"({delta:+6.1f}%)"
        )
    return lines


def render_png(names: list[str], series: dict, field_filter: str | None,
               path: str) -> bool:
    """Write a matplotlib line chart; False when matplotlib is absent."""
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return False
    figure, axis = plt.subplots(figsize=(11, 6))
    x = range(len(names))
    for (key, field), values in sorted(series.items(),
                                       key=lambda item: str(item[0])):
        if field_filter is not None and field != field_filter:
            continue
        if not any(value is not None for value in values):
            continue
        axis.plot(x, values, marker="o", linewidth=1,
                  label=f"{label_of(key)} {field}")
    axis.set_xticks(list(x))
    axis.set_xticklabels(names, rotation=45, ha="right", fontsize=7)
    axis.set_ylabel("seconds")
    axis.set_title("bench_campaign_engine trajectory")
    axis.legend(fontsize=6, ncol=2)
    figure.tight_layout()
    figure.savefig(path, dpi=120)
    plt.close(figure)
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("summaries", nargs="*",
                        help="benchmark summary JSON files, one per run "
                             "(omit with --from-artifacts)")
    parser.add_argument("--order", choices=("args", "mtime"), default="args",
                        help="run order: as given (default) or by file "
                             "modification time")
    parser.add_argument("--field", default=None,
                        help="only plot this timing field (e.g. "
                             "compiled_s); default: all *_s fields")
    parser.add_argument("--png", default=None,
                        help="additionally write a line chart here "
                             "(needs matplotlib; degrades to a notice)")
    parser.add_argument("--from-artifacts", action="store_true",
                        help="pull the bench-full-* artifact series via "
                             "the gh CLI instead of passing files")
    parser.add_argument("--repo", default=None,
                        help="GitHub owner/name for --from-artifacts "
                             "(default: the current directory's repo)")
    parser.add_argument("--limit", type=int, default=0,
                        help="with --from-artifacts, only the newest N "
                             "summaries (0 = all unexpired)")
    parser.add_argument("--artifacts-dir", default="benchmarks/out/artifacts",
                        help="cache directory for downloaded artifact "
                             "summaries")
    args = parser.parse_args(argv)

    if args.from_artifacts:
        if args.summaries:
            parser.error("--from-artifacts builds its own summary list; "
                         "drop the positional files")
        try:
            repo = args.repo or _detect_repo()
            paths = fetch_artifact_series(repo, args.artifacts_dir,
                                          limit=args.limit)
        except RuntimeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"fetched {len(paths)} summaries from {repo} "
              f"into {args.artifacts_dir}")
    elif not args.summaries:
        parser.error("pass summary JSON files or --from-artifacts")
    else:
        paths = list(args.summaries)
        if args.order == "mtime":
            paths.sort(key=os.path.getmtime)
    names, series = load_series(paths)
    for line in render_text(names, series, args.field):
        print(line)
    if args.png:
        if render_png(names, series, args.field, args.png):
            print(f"wrote {args.png}")
        else:
            print("matplotlib not available: skipped the PNG "
                  "(text trend above is complete)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
