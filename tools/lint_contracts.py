#!/usr/bin/env python
"""Repo-wide invariant lint: the cross-cutting contracts ruff can't see.

Four AST rules, each guarding an implicit contract between subsystems
that no single module's tests can enforce:

1. **packed-surface** -- lane models in ``repro/sim/batched.py`` drive
   memory state exclusively through the public
   :class:`~repro.memory.packed.PackedMemoryArray` column-helper surface
   (``read_lanes``/``write_lanes``/``fold``/``broadcast``/...): no
   private-attribute access on any object other than ``self``/``cls``.
   Reaching into ``memory._backend`` (or any ``_``-prefixed storage
   attribute) would silently couple a lane model to one storage backend
   and break the int/numpy backend equivalence the engine guarantees.

2. **picklable-payloads** -- ``repro/sim/pool.py`` and ``remote.py``
   build shard task tuples that cross process (and host) boundaries, so
   the modules must not define lambdas, nested functions or local
   classes: any of them leaking into a payload raises ``PicklingError``
   only at runtime, on the worker, under load.

3. **hook-flags** -- every :class:`~repro.memory.packed.LaneFaultModel`
   subclass that overrides a flag-gated hook must set the gate:
   ``settle`` -> ``settles``, ``clock`` -> ``timed``,
   ``transform_read`` -> ``transforms_reads``,
   ``group_write_conflicts`` -> ``maps_addresses``.  The replay loop
   consults the flag *instead of* probing for the method -- an unset
   flag means the override is dead code and the fault class silently
   under-detects.

4. **kind-registry** -- every ``kind`` a ``vector_semantics()``
   descriptor can carry (the string literals passed to
   ``VectorSemantics(...)`` in ``repro/faults/``) must have a lane
   model registered in ``repro/sim/batched.py``'s ``_MODELS``; and
   every kind ``repro/sim/campaign.py``'s ``_fits_geometry`` special-
   cases must be a real descriptor kind (no stale branches).

Run standalone (exit 0 clean / 1 findings)::

    python tools/lint_contracts.py

or import :func:`run` (the tests do).
"""

from __future__ import annotations

import ast
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: hook method -> the gate flag the replay loop consults.
HOOK_FLAGS = {
    "settle": "settles",
    "clock": "timed",
    "transform_read": "transforms_reads",
    "group_write_conflicts": "maps_addresses",
}

#: the root class defining the hooks (exempt from rule 3).
_ROOT_MODEL = "LaneFaultModel"


def _parse(path: str) -> ast.Module:
    with open(path, encoding="utf-8") as handle:
        return ast.parse(handle.read(), filename=path)


def _relative(path: str, root: str) -> str:
    return os.path.relpath(path, root)


# -- rule 1: packed-surface --------------------------------------------------


def check_packed_surface(path: str, root: str) -> list[str]:
    """No private-attribute access on non-self objects in batched.py."""
    findings = []
    for node in ast.walk(_parse(path)):
        if not isinstance(node, ast.Attribute):
            continue
        attr = node.attr
        if not attr.startswith("_") or attr.startswith("__"):
            continue
        base = node.value
        if isinstance(base, ast.Name) and base.id in ("self", "cls"):
            continue
        findings.append(
            f"{_relative(path, root)}:{node.lineno}: [packed-surface] "
            f"private attribute access '.{attr}' -- lane models must use "
            f"the public PackedMemoryArray column-helper surface"
        )
    return findings


# -- rule 2: picklable-payloads ----------------------------------------------


def check_picklable_payloads(path: str, root: str) -> list[str]:
    """No lambdas / nested defs / local classes in the sharding modules."""
    findings = []
    rel = _relative(path, root)
    tree = _parse(path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Lambda):
            findings.append(
                f"{rel}:{node.lineno}: [picklable-payloads] lambda -- "
                f"shard task payloads must stay picklable"
            )
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in ast.walk(node):
                if stmt is node:
                    continue
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    findings.append(
                        f"{rel}:{stmt.lineno}: [picklable-payloads] "
                        f"{type(stmt).__name__} {stmt.name!r} nested in "
                        f"{node.name!r} -- closures/local classes cannot "
                        f"cross the worker boundary"
                    )
    return findings


# -- rule 3: hook-flags ------------------------------------------------------


def _class_assignments(cls: ast.ClassDef) -> set[str]:
    """Names assigned in a class body (incl. ``self.x = ...`` in methods)."""
    names: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, ast.FunctionDef):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.ctx, ast.Store) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id == "self":
                    names.add(node.attr)
    return names


def _base_names(cls: ast.ClassDef) -> list[str]:
    out = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            out.append(base.id)
        elif isinstance(base, ast.Attribute):
            out.append(base.attr)
    return out


def check_hook_flags(path: str, root: str) -> list[str]:
    """Every overridden flag-gated hook sets its flag (module-local MRO)."""
    findings = []
    rel = _relative(path, root)
    tree = _parse(path)
    classes = {node.name: node for node in tree.body
               if isinstance(node, ast.ClassDef)}

    def is_model(name: str, seen: tuple = ()) -> bool:
        if name == _ROOT_MODEL:
            return True
        cls = classes.get(name)
        if cls is None or name in seen:
            return False
        return any(is_model(base, (*seen, name))
                   for base in _base_names(cls))

    def flags_set(name: str) -> set[str]:
        cls = classes.get(name)
        if cls is None:
            return set()
        names = _class_assignments(cls)
        for base in _base_names(cls):
            if base != _ROOT_MODEL:
                names |= flags_set(base)
        return names

    for name, cls in classes.items():
        if name == _ROOT_MODEL or not is_model(name):
            continue
        defined = {stmt.name for stmt in cls.body
                   if isinstance(stmt, ast.FunctionDef)}
        available_flags = flags_set(name)
        for hook, flag in HOOK_FLAGS.items():
            if hook in defined and flag not in available_flags:
                findings.append(
                    f"{rel}:{cls.lineno}: [hook-flags] {name} overrides "
                    f"{hook}() but never sets {flag} -- the replay loop "
                    f"gates on the flag, so the hook is dead code"
                )
    return findings


# -- rule 4: kind-registry ---------------------------------------------------


def _semantics_kinds(faults_dir: str) -> set[tuple[str, str, int]]:
    """``(kind, path, line)`` for every literal VectorSemantics kind."""
    kinds = set()
    for name in sorted(os.listdir(faults_dir)):
        if not name.endswith(".py"):
            continue
        path = os.path.join(faults_dir, name)
        for node in ast.walk(_parse(path)):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            func_name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if func_name != "VectorSemantics":
                continue
            kind_node = node.args[0] if node.args else next(
                (kw.value for kw in node.keywords if kw.arg == "kind"), None)
            if isinstance(kind_node, ast.Constant) \
                    and isinstance(kind_node.value, str):
                kinds.add((kind_node.value, path, node.lineno))
    return kinds


def _model_keys(batched_path: str) -> set[str]:
    for node in _parse(batched_path).body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if any(isinstance(t, ast.Name) and t.id == "_MODELS"
               for t in targets) and isinstance(value, ast.Dict):
            return {key.value for key in value.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str)}
    return set()


def _fits_geometry_literals(campaign_path: str) -> set[str]:
    for node in _parse(campaign_path).body:
        if isinstance(node, ast.FunctionDef) \
                and node.name == "_fits_geometry":
            body = node.body
            if body and isinstance(body[0], ast.Expr) \
                    and isinstance(body[0].value, ast.Constant):
                body = body[1:]  # skip the docstring
            return {sub.value for stmt in body for sub in ast.walk(stmt)
                    if isinstance(sub, ast.Constant)
                    and isinstance(sub.value, str)}
    return set()


def check_kind_registry(root: str) -> list[str]:
    findings = []
    batched = os.path.join(root, "src", "repro", "sim", "batched.py")
    campaign = os.path.join(root, "src", "repro", "sim", "campaign.py")
    faults = os.path.join(root, "src", "repro", "faults")
    kinds = _semantics_kinds(faults)
    model_keys = _model_keys(batched)
    if not model_keys:
        return [f"{_relative(batched, root)}:1: [kind-registry] "
                f"could not locate the _MODELS literal dict"]
    fits_literals = _fits_geometry_literals(campaign)
    kind_names = {kind for kind, _, _ in kinds}
    for kind, path, lineno in sorted(kinds):
        if kind not in model_keys:
            findings.append(
                f"{_relative(path, root)}:{lineno}: [kind-registry] "
                f"vector_semantics kind {kind!r} has no lane model in "
                f"batched._MODELS"
            )
    for literal in sorted(fits_literals - kind_names):
        findings.append(
            f"{_relative(campaign, root)}:1: [kind-registry] "
            f"_fits_geometry special-cases kind {literal!r} that no "
            f"vector_semantics() descriptor produces"
        )
    return findings


# -- driver ------------------------------------------------------------------


def run(root: str = REPO) -> list[str]:
    """All four rules over the repo at ``root``; returns the findings."""
    src = os.path.join(root, "src", "repro")
    findings: list[str] = []
    findings += check_packed_surface(
        os.path.join(src, "sim", "batched.py"), root)
    for module in ("pool.py", "remote.py"):
        findings += check_picklable_payloads(
            os.path.join(src, "sim", module), root)
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith(".py"):
                findings += check_hook_flags(
                    os.path.join(dirpath, name), root)
    findings += check_kind_registry(root)
    return findings


def main(argv: list[str] | None = None) -> int:
    root = (argv or [])[0] if argv else REPO
    findings = run(root)
    for finding in findings:
        print(finding)
    print(f"lint_contracts: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
